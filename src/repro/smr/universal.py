"""The universal ADT and generic SMR glue (Section 6).

"The output function of the universal ADT is the identity function ...
The universal ADT can be used as an abstraction for generic SMR protocols
because, given a linearizable implementation, it suffices to apply the
output function of another ADT A to the responses in order to obtain an
implementation of A."

This module provides that application step: a :class:`UniversalFrontend`
wraps any linearizable *universal* object (something producing growing
command histories — here, the replicated log of
:mod:`repro.smr.replica`) and exposes an arbitrary ADT by applying its
output function to the history responses.
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

from ..core.adt import ADT, PartitionSpec, universal_adt


class UniversalFrontend:
    """Derive an arbitrary ADT from universal-object responses.

    ``respond(history)`` applies the target ADT's output function to a
    history returned by the universal object — the last input of the
    history is the invocation being answered.
    """

    def __init__(self, adt: ADT) -> None:
        self.adt = adt
        self.universal = universal_adt(valid_input=adt.is_input)

    def respond(self, history: Sequence) -> Hashable:
        """The target-ADT output for a universal response ``history``."""
        return self.adt.output(tuple(history))

    def respond_prefix(self, history: Sequence, upto: int) -> Hashable:
        """Output after only the first ``upto`` inputs of the history."""
        return self.adt.output(tuple(history[:upto]))


#: first element of a batch decree value (see :func:`make_batch`)
BATCH_TAG = "batch"


def make_batch(commands: Sequence[Hashable]) -> Tuple:
    """Pack client commands into one decree value.

    The batching coordinator proposes ``("batch", (cmd, ...))`` as a
    *single* consensus value: one Quorum/Backup round decides a whole
    group of operations, which is what lets throughput scale past one
    op per protocol round trip.  Commands keep their per-client
    ``("seq", ...)`` tags, so distinct batches are distinct values —
    the sticky-acceptance and unanimity arguments are untouched because
    consensus only ever compares decree values for equality.
    """
    return (BATCH_TAG, tuple(commands))


def is_batch(value: Hashable) -> bool:
    """True iff ``value`` is a batch decree."""
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and value[0] == BATCH_TAG
        and isinstance(value[1], tuple)
    )


def batch_commands(value: Hashable) -> Tuple:
    """The commands a decided decree carries (a 1-tuple if unbatched).

    Appliers flatten decided slots through this, so a log mixing
    batched and single-op decrees (e.g. after a codec or config
    rollout) replays to the same sequential history.
    """
    if is_batch(value):
        return value[1]  # type: ignore[index]
    return (value,)


def kv_put(key: Hashable, value: Hashable) -> Tuple:
    """KV command: bind ``key`` to ``value``; returns the previous value."""
    return ("put", key, value)


def kv_get(key: Hashable) -> Tuple:
    """KV command: read the value bound to ``key`` (None if absent)."""
    return ("get", key)


def kv_delete(key: Hashable) -> Tuple:
    """KV command: unbind ``key``; returns the previous value."""
    return ("delete", key)


def kv_cell_adt(key: Hashable) -> ADT:
    """The single-key component of the KV store: one cell's value.

    State is the cell's current value, ``None`` meaning absent — which is
    exactly what the full store answers for a missing key, so per-cell
    outputs coincide with the store's outputs on the projected history.
    """

    def is_input(payload) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] == "put":
            return len(payload) == 3 and payload[1] == key
        if payload[0] in ("get", "delete"):
            return len(payload) == 2 and payload[1] == key
        return False

    def is_output(payload) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "value"
        )

    def transition(state, input):
        op = input[0]
        if op == "put":
            return input[2], ("value", state)
        if op == "get":
            return state, ("value", state)
        return None, ("value", state)

    return ADT(f"kv_cell[{key!r}]", None, transition, is_input, is_output)


def kv_store_adt() -> ADT:
    """A replicated key-value store as an ADT (the Gaios/Chubby shape the
    paper cites as consensus use cases).

    State is a tuple of (key, value) pairs; all commands answer
    ``("value", previous_or_current)``.  Every command touches exactly one
    key and its output depends only on that key's sub-history, so the ADT
    carries a :class:`~repro.core.adt.PartitionSpec` keyed on the command's
    key with :func:`kv_cell_adt` components — the P-compositional checker
    in :mod:`repro.core.fastcheck` decomposes traces per key.
    """

    def is_input(payload) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] == "put":
            return len(payload) == 3
        if payload[0] in ("get", "delete"):
            return len(payload) == 2
        return False

    def is_output(payload) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "value"
        )

    def transition(state, input):
        mapping = dict(state)
        op = input[0]
        if op == "put":
            _, key, value = input
            previous = mapping.get(key)
            mapping[key] = value
            return tuple(sorted(mapping.items(), key=repr)), ("value", previous)
        if op == "get":
            _, key = input
            return state, ("value", mapping.get(key))
        _, key = input
        previous = mapping.pop(key, None)
        return tuple(sorted(mapping.items(), key=repr)), ("value", previous)

    def key_of(payload):
        if payload[0] == "put" and len(payload) == 3:
            return payload[1]
        if payload[0] in ("get", "delete") and len(payload) == 2:
            return payload[1]
        raise ValueError(f"not a kv command: {payload!r}")

    partition = PartitionSpec(key_of=key_of, component=kv_cell_adt)
    return ADT(
        "kv_store", (), transition, is_input, is_output, partition=partition
    )
