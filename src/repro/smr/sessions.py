"""Exactly-once client sessions: the dedup seam of the replicated fold.

Speculative linearizability's whole point is that a client may abort
the fast path and *safely relaunch* the operation on the backup
protocol.  Relaunching is only safe if a command that decides twice —
a retried proposal whose first decree also landed, a hedged duplicate,
a replayed frame — **applies** once.  Classical SMR closes this with
per-client sessions: the replicated state machine carries, per client,
the highest applied sequence number and the reply it produced, and
drops any command whose ``(client, seq)`` it has already applied,
answering the cached reply instead.

In this codebase the replicated state is the decided log and ADT
application happens in the *appliers* — :class:`~repro.net.pipeline.
SlotPipeline`'s incremental fold and :class:`~repro.net.client.
NetClient`'s prefix fold.  The session rule is therefore a property of
the fold, and it is deterministic across every applier because every
client op carries a unique ``("seq", (client, seq))`` tag (the same
tag the pipeline already uses for multiplexing): **the first occurrence
of a uid in log order applies; every later occurrence is a duplicate
and answers the cached reply.**  Appliers route through
:class:`SessionedApplier` (the seam lint rule RD07 enforces) instead of
calling ``adt.transition`` directly.

Durability is inherited, not reimplemented: the decided log is exactly
what the node WALs persist (``"dec"`` records) and snapshot on
compaction (:meth:`repro.net.wal.NodeWAL.compact`), so the session
table — a pure function of the decided prefix — survives crash,
restart and compaction with no extra machinery.  A recovering applier
refolds the replayed log through the same seam and rebuilds the same
table, which is what the crash-recovery tests assert.

:func:`sessioned_adt` is the specification-level statement of the same
idea: an :class:`~repro.core.adt.ADT` wrapper whose state embeds the
``client -> (seq, cached_reply)`` table, usable by the checkers and by
anyone who wants the session semantics as a first-class replicated
object.  The ``enabled=False`` escape hatch on :class:`SessionTable` /
:class:`SessionedApplier` exists for one purpose: the dedup-disabled
*mutant* the retry-storm canary must catch as a linearizability
violation (double-applied increments), proving the checker guards this
exact seam.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..core.adt import ADT

#: tag key carried as the last element of every client-tagged command
SEQ_TAG = "seq"


def seq_uid(command: Hashable) -> Optional[Tuple]:
    """The ``(client, seq)`` uid of a tagged command, or None.

    A tagged command ends with ``("seq", (client, seq))`` — the shape
    :meth:`NetClient.submit`/:meth:`PipelineClient.submit` append.
    Untagged commands (spec-level inputs) have no session identity.
    """
    if not isinstance(command, tuple) or not command:
        return None
    tag = command[-1]
    if (
        isinstance(tag, tuple)
        and len(tag) == 2
        and tag[0] == SEQ_TAG
        and isinstance(tag[1], tuple)
        and len(tag[1]) == 2
    ):
        return tag[1]
    return None


def untag_command(command: Tuple) -> Tuple:
    """The command without its session tag (identity if untagged)."""
    if seq_uid(command) is not None:
        return command[:-1]
    return command


def dedup_commands(commands: Iterable[Tuple]) -> Iterator[Tuple]:
    """First-occurrence-wins filter over a log-ordered command stream.

    Yields each command whose uid has not been seen before (untagged
    commands always pass).  This is the session rule as a pure stream
    transform — prefix folds (:meth:`NetClient._prefix_response`) use
    it so a retried command that decided in two slots contributes one
    application to the derived history.
    """
    seen = set()
    for command in commands:
        uid = seq_uid(command)
        if uid is not None:
            if uid in seen:
                continue
            seen.add(uid)
        yield command


class SessionTable:
    """Per-client ``(last applied seq, cached reply)`` — the dedup table.

    Clients are sequential and their seqs strictly increase, so one
    ``(seq, reply)`` pair per client suffices: a duplicate occurrence
    carries ``seq <= last``, and only ``seq == last`` can still have a
    live waiter needing the cached reply (the client has since moved
    on past anything older).  ``enabled=False`` is the mutant knob —
    every command reports fresh, duplicates double-apply, and the
    checker must catch it.
    """

    __slots__ = ("enabled", "duplicates", "_sessions")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        #: duplicate occurrences suppressed (observability)
        self.duplicates = 0
        self._sessions: Dict[Hashable, Tuple[int, Hashable]] = {}

    def __len__(self) -> int:
        return len(self._sessions)

    def fresh(self, command: Tuple) -> bool:
        """True iff ``command`` must be applied (first occurrence)."""
        uid = seq_uid(command)
        if uid is None or not self.enabled:
            return True
        client, seq = uid
        last = self._sessions.get(client)
        if last is not None and seq <= last[0]:
            self.duplicates += 1
            return False
        return True

    def record(self, command: Tuple, reply: Hashable) -> None:
        """Remember the reply the first occurrence of ``command`` made."""
        uid = seq_uid(command)
        if uid is None:
            return
        client, seq = uid
        self._sessions[client] = (seq, reply)

    def cached_reply(self, command: Tuple) -> Hashable:
        """The remembered reply for a duplicate of ``command``.

        Only the client's *current* seq has a live waiter, so the last
        cached reply is the right answer whenever anyone is listening;
        older duplicates get it too (no one is waiting on those).
        """
        uid = seq_uid(command)
        if uid is None:
            return None
        last = self._sessions.get(uid[0])
        return last[1] if last is not None else None

    def snapshot(self) -> Tuple:
        """The table as a canonical hashable value (spec-state embedding)."""
        return tuple(
            (client, seq, reply)
            for client, (seq, reply) in sorted(
                self._sessions.items(), key=lambda item: repr(item[0])
            )
        )

    @classmethod
    def restore(cls, snapshot: Tuple, enabled: bool = True) -> "SessionTable":
        """Rebuild a table from :meth:`snapshot`."""
        table = cls(enabled=enabled)
        for client, seq, reply in snapshot:
            table._sessions[client] = (seq, reply)
        return table


class SessionedApplier:
    """The seam every replicated apply path routes through (RD07).

    Wraps a base ADT with a :class:`SessionTable`: ``apply`` folds one
    *tagged* decided command into the running state, suppressing
    duplicate occurrences and answering their cached replies.  The fold
    stays deterministic in log order, so every applier — pipelines,
    prefix folds, recovering replicas — derives the same state and the
    same replies from the same decided log.
    """

    def __init__(self, adt: ADT, enabled: bool = True) -> None:
        self.adt = adt
        self.table = SessionTable(enabled=enabled)

    @property
    def duplicates(self) -> int:
        """Duplicate command occurrences suppressed so far."""
        return self.table.duplicates

    def apply(
        self, state: Hashable, command: Tuple
    ) -> Tuple[Hashable, Hashable, bool]:
        """Fold one decided command: ``(state', reply, fresh)``.

        ``fresh`` is False for a suppressed duplicate — the state is
        unchanged and the reply is the cached one its first occurrence
        produced (the waiter of a retried/hedged op still gets the
        canonical answer).
        """
        if not self.table.fresh(command):
            return state, self.table.cached_reply(command), False
        state, reply = self.adt.transition(state, untag_command(command))
        self.table.record(command, reply)
        return state, reply, True


def sessioned_adt(base: ADT) -> ADT:
    """The ``SessionedADT`` wrapper: sessions embedded in the machine.

    State is ``(inner_state, session_snapshot)``; inputs are the tagged
    commands the wire carries (untagged inputs pass straight through).
    A duplicate input leaves the state unchanged and outputs the cached
    reply — exactly-once semantics as a *specification*, checkable with
    the same engines as any other ADT and usable wherever a replicated
    object wants safe retry built in.
    """

    def is_input(payload: Hashable) -> bool:
        if not isinstance(payload, tuple):
            return False
        return base.is_input(untag_command(payload))

    def transition(state, payload):
        inner, snapshot = state
        uid = seq_uid(payload)
        if uid is None:
            inner, output = base.transition(inner, payload)
            return (inner, snapshot), output
        table = SessionTable.restore(snapshot)
        if not table.fresh(payload):
            return state, table.cached_reply(payload)
        inner, output = base.transition(inner, untag_command(payload))
        table.record(payload, output)
        return (inner, table.snapshot()), output

    return ADT(
        f"sessioned[{base.name}]",
        (base.initial_state, ()),
        transition,
        is_input,
        base.is_output,
    )
