"""Speculative State Machine Replication over the composed consensus.

Section 6 motivates the framework with SMR: "The speculative approach to
SMR protocols has been shown to yield some of the most efficient SMR
protocols in practice."  This module builds a multi-slot replicated log
where **each slot is an independent instance of the Section 2 composed
consensus** (Quorum fast path + Paxos backup):

* a client submits a command, proposing it for the first log slot it does
  not know to be decided;
* the slot's consensus instance decides one command (two message delays
  via Quorum when the slot is uncontended and fault-free, via Backup
  otherwise);
* a client whose command lost the slot applies the winner and retries on
  the next slot — so the log has no gaps among slots any client has
  committed past;
* the growing log *is* a universal object (Section 6): responses for an
  arbitrary ADT are derived by applying its output function to the log
  prefix ending at the committed command
  (:class:`repro.smr.universal.UniversalFrontend`).

Per-command metrics (slots attempted, fast/slow path of the deciding
slot, virtual-time latency) feed experiment E9.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from ..mp.backoff import BackoffPolicy
from ..mp.backup import BackupClient
from ..mp.paxos import PaxosAcceptor, PaxosCoordinator
from ..mp.quorum import QuorumClient, QuorumServer
from ..mp.sim import Network, Simulator
from .universal import make_batch


@dataclass
class CommandOutcome:
    """Metrics and result for one submitted command."""

    client: Hashable
    command: Hashable
    start: float
    slot: Optional[int] = None
    commit_time: Optional[float] = None
    attempts: int = 0
    switched_slots: int = 0
    response: Optional[Hashable] = None
    gave_up: bool = False
    give_up_time: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Virtual-time latency from submission to commit."""
        if self.commit_time is None:
            return None
        return self.commit_time - self.start

    @property
    def path(self) -> str:
        """Fast iff no slot along the way needed the Backup phase."""
        if self.commit_time is None:
            return "gave_up" if self.gave_up else "none"
        return "slow" if self.switched_slots else "fast"


class _SlotInstance:
    """Server-side processes of one consensus slot."""

    def __init__(self, smr: "SpeculativeSMR", slot: int) -> None:
        self.slot = slot
        self.quorum_pids = []
        self.coordinator_pids = []
        self.acceptor_pids = []
        for i in range(smr.n_servers):
            if smr.server_crashed[i]:
                # A crashed physical server contributes no live roles to
                # new slots either; crash() (not a bare flag) so a later
                # recover_server restarts these roles uniformly.
                qs = QuorumServer(("qs", slot, i))
                qs.crash()
                acc = PaxosAcceptor(("acc", slot, i))
                acc.crash()
                coord = PaxosCoordinator(
                    ("coord", slot, i),
                    rank=i,
                    n_coordinators=smr.n_servers,
                    acceptors=[("acc", slot, j) for j in range(smr.n_servers)],
                )
                coord.crash()
            else:
                qs = QuorumServer(("qs", slot, i))
                acc = PaxosAcceptor(("acc", slot, i))
                coord = PaxosCoordinator(
                    ("coord", slot, i),
                    rank=i,
                    n_coordinators=smr.n_servers,
                    acceptors=[("acc", slot, j) for j in range(smr.n_servers)],
                    pre_prepare=(i == smr.first_live_server()),
                )
            smr.network.register(qs)
            smr.network.register(acc)
            smr.network.register(coord)
            self.quorum_pids.append(qs.pid)
            self.acceptor_pids.append(acc.pid)
            self.coordinator_pids.append(coord.pid)
        self.learners: List[Hashable] = list(self.coordinator_pids)
        self.decided: Optional[Hashable] = None

    def register_learner(self, smr: "SpeculativeSMR", pid: Hashable) -> None:
        self.learners.append(pid)
        for acc_pid in self.acceptor_pids:
            smr.network.processes[acc_pid].register_learners(self.learners)


class SpeculativeSMR:
    """A replicated log: one composed-consensus instance per slot."""

    def __init__(
        self,
        n_servers: int = 3,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        quorum_timeout: float = 6.0,
        duplicate_rate: float = 0.0,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim,
            delay=delay,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
        )
        self.n_servers = n_servers
        self.quorum_timeout = quorum_timeout
        self.backoff = backoff
        self.server_crashed = [False] * n_servers
        self.slots: Dict[int, _SlotInstance] = {}
        self.log: Dict[int, Hashable] = {}
        self.outcomes: List[CommandOutcome] = []
        self._uid = 0
        self.on_commit: Optional[Callable[[CommandOutcome], None]] = None

    def first_live_server(self) -> int:
        """Index of the lowest-ranked non-crashed server."""
        for i, crashed in enumerate(self.server_crashed):
            if not crashed:
                return i
        return 0

    def crash_server(self, index: int, at: float = 0.0) -> None:
        """Crash a physical server: all its roles in all current and
        future slots."""

        def do_crash() -> None:
            self.server_crashed[index] = True
            for slot in self.slots.values():
                for pid in (
                    ("qs", slot.slot, index),
                    ("acc", slot.slot, index),
                    ("coord", slot.slot, index),
                ):
                    if pid in self.network.processes:
                        self.network.processes[pid].crash()

        self.network.call_later(max(0.0, at - self.network.now), do_crash)

    def recover_server(self, index: int, at: float = 0.0) -> None:
        """Restart a physical server: its roles in every current slot
        recover with their durable state (the acceptors' Paxos triples,
        the quorum servers' sticky acceptances), and slots created from
        now on host live roles again."""

        def do_recover() -> None:
            self.server_crashed[index] = False
            for slot in self.slots.values():
                for pid in (
                    ("qs", slot.slot, index),
                    ("acc", slot.slot, index),
                    ("coord", slot.slot, index),
                ):
                    if pid in self.network.processes:
                        self.network.processes[pid].recover()

        self.network.call_later(max(0.0, at - self.network.now), do_recover)

    def _ensure_slot(self, slot: int) -> _SlotInstance:
        if slot not in self.slots:
            self.slots[slot] = _SlotInstance(self, slot)
        return self.slots[slot]

    def submit(
        self, client: Hashable, command: Hashable, at: float = 0.0
    ) -> CommandOutcome:
        """Schedule ``client`` to replicate ``command`` at time ``at``."""
        outcome = CommandOutcome(client=client, command=command, start=at)
        self.outcomes.append(outcome)

        def try_slot(slot: int) -> None:
            instance = self._ensure_slot(slot)
            if instance.decided is not None:
                # Known decided: skip forward without a consensus round.
                advance(slot, instance.decided)
                return
            outcome.attempts += 1
            self._uid += 1
            uid = self._uid

            def on_decide(winner: Hashable) -> None:
                settle(slot, winner, switched=False)

            def on_switch(switch_value: Hashable) -> None:
                outcome.switched_slots += 1
                backup = BackupClient(
                    ("bcli", uid),
                    coordinators=instance.coordinator_pids,
                    n_acceptors=self.n_servers,
                    on_decide=lambda winner: settle(slot, winner, switched=True),
                    backoff=self.backoff,
                    on_give_up=on_give_up,
                )
                self.network.register(backup)
                instance.register_learner(self, backup.pid)
                backup.switch_to_backup(switch_value)

            def on_give_up() -> None:
                # The slot is unreachable within the retry budget; the
                # command reports failure rather than probing further
                # slots against the same dead cluster.
                outcome.gave_up = True
                outcome.give_up_time = self.network.now

            def settle(slot: int, winner: Hashable, switched: bool) -> None:
                instance = self.slots[slot]
                if instance.decided is None:
                    instance.decided = winner
                    self.log[slot] = winner
                advance(slot, instance.decided)

            timeout = self.quorum_timeout
            if self.backoff is not None:
                timeout = self.backoff.delay(0, key=("qcli", uid))
            quorum = QuorumClient(
                ("qcli", uid),
                servers=instance.quorum_pids,
                on_decide=on_decide,
                on_switch=on_switch,
                timeout=timeout,
            )
            self.network.register(quorum)
            quorum.propose(command)

        def advance(slot: int, winner: Hashable) -> None:
            if winner == command and outcome.commit_time is None:
                outcome.slot = slot
                outcome.commit_time = self.network.now
                if self.on_commit is not None:
                    self.on_commit(outcome)
            elif outcome.commit_time is None:
                try_slot(slot + 1)

        def start() -> None:
            # Stamp the true start instant: `at` is relative to the call
            # time when submissions happen mid-simulation (e.g. queued
            # client operations of the KV store).
            outcome.start = self.network.now
            next_slot = 0
            while next_slot in self.log:
                next_slot += 1
            try_slot(next_slot)

        self.network.call_later(at, start)
        return outcome

    def submit_pipelined(
        self,
        client: Hashable,
        commands: Sequence[Hashable],
        at: float = 0.0,
        window: int = 8,
        max_batch: int = 8,
    ) -> List[CommandOutcome]:
        """Replicate ``commands`` through a window of in-flight decrees.

        Where :meth:`submit` probes one slot at a time per command, this
        keeps up to ``window`` consecutive slots in flight at once, each
        carrying a batch of up to ``max_batch`` queued commands — the
        simulator-side mirror of the TCP runtime's
        :class:`repro.net.pipeline.SlotPipeline`.  A decree that loses
        its slot re-queues its commands at the head of the line; slots
        are claimed from a monotonic counter that skips known-decided
        ones, so the committed log stays a contiguous prefix.

        Safety is :meth:`submit`'s argument verbatim: a batch value is
        proposed at one slot at a time and re-proposed only after its
        slot demonstrably decided a different winner, so no value is
        ever decided twice; and batches carry their commands' unique
        per-client tags, so distinct groups are distinct decree values.
        """
        outcomes = [
            CommandOutcome(client=client, command=cmd, start=at)
            for cmd in commands
        ]
        self.outcomes.extend(outcomes)
        queue: deque = deque(outcomes)
        in_flight = [0]
        next_slot = [0]

        def claim_slot() -> int:
            slot = next_slot[0]
            while slot in self.log or (
                slot in self.slots and self.slots[slot].decided is not None
            ):
                slot += 1
            next_slot[0] = slot + 1
            return slot

        def pump() -> None:
            while in_flight[0] < window and queue:
                group = [
                    queue.popleft()
                    for _ in range(min(max_batch, len(queue)))
                ]
                in_flight[0] += 1
                propose(claim_slot(), group)

        def propose(slot: int, group: List[CommandOutcome]) -> None:
            instance = self._ensure_slot(slot)
            value = make_batch(tuple(o.command for o in group))
            for outcome in group:
                outcome.attempts += 1
            self._uid += 1
            uid = self._uid
            settled = [False]

            def settle(winner: Hashable, switched: bool) -> None:
                # one accounting pass per decree, however many of the
                # quorum/backup callbacks eventually hear the decision
                if settled[0]:
                    return
                settled[0] = True
                if instance.decided is None:
                    instance.decided = winner
                    self.log[slot] = winner
                won = instance.decided == value
                if switched:
                    for outcome in group:
                        outcome.switched_slots += 1
                for outcome in group:
                    if won and outcome.commit_time is None:
                        outcome.slot = slot
                        outcome.commit_time = self.network.now
                        if self.on_commit is not None:
                            self.on_commit(outcome)
                if not won:
                    # losers rejoin at the head: their invocations are
                    # oldest, and head placement keeps client order
                    queue.extendleft(reversed(group))
                in_flight[0] -= 1
                pump()

            def on_switch(switch_value: Hashable) -> None:
                backup = BackupClient(
                    ("bcli", uid),
                    coordinators=instance.coordinator_pids,
                    n_acceptors=self.n_servers,
                    on_decide=lambda winner: settle(winner, switched=True),
                    backoff=self.backoff,
                    on_give_up=on_give_up,
                )
                self.network.register(backup)
                instance.register_learner(self, backup.pid)
                backup.switch_to_backup(switch_value)

            def on_give_up() -> None:
                if settled[0]:
                    return
                settled[0] = True
                for outcome in group:
                    outcome.gave_up = True
                    outcome.give_up_time = self.network.now
                in_flight[0] -= 1

            timeout = self.quorum_timeout
            if self.backoff is not None:
                timeout = self.backoff.delay(0, key=("qcli", uid))
            quorum = QuorumClient(
                ("qcli", uid),
                servers=instance.quorum_pids,
                on_decide=lambda winner: settle(winner, switched=False),
                on_switch=on_switch,
                timeout=timeout,
            )
            self.network.register(quorum)
            quorum.propose(value)

        def start() -> None:
            for outcome in outcomes:
                outcome.start = self.network.now
            slot = 0
            while slot in self.log:
                slot += 1
            next_slot[0] = slot
            pump()

        self.network.call_later(at, start)
        return outcomes

    def run(self, until: Optional[float] = None, max_events: int = 500000) -> None:
        """Drive the simulation to quiescence (or the given horizon)."""
        self.sim.run(until=until, max_events=max_events)

    def committed_log(self) -> List[Hashable]:
        """The decided commands of the contiguous log prefix, in order."""
        result = []
        slot = 0
        while slot in self.log:
            result.append(self.log[slot])
            slot += 1
        return result
