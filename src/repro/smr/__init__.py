"""Speculative State Machine Replication (the Section 6 application).

The universal ADT and ADT-derivation glue (:mod:`repro.smr.universal`),
the multi-slot replicated log where every slot is a composed Quorum+Backup
consensus instance (:mod:`repro.smr.replica`), and a replicated key-value
store built on top (:mod:`repro.smr.kvstore`).
"""

from .kvstore import KVResult, ReplicatedKVStore
from .lockservice import LockResult, LockService, lock_table_adt
from .replica import CommandOutcome, SpeculativeSMR
from .sessions import (
    SessionTable,
    SessionedApplier,
    dedup_commands,
    sessioned_adt,
    seq_uid,
    untag_command,
)
from .universal import (
    UniversalFrontend,
    kv_delete,
    kv_get,
    kv_put,
    kv_store_adt,
)

__all__ = [
    "CommandOutcome",
    "KVResult",
    "LockResult",
    "LockService",
    "ReplicatedKVStore",
    "SessionTable",
    "SessionedApplier",
    "SpeculativeSMR",
    "UniversalFrontend",
    "dedup_commands",
    "kv_delete",
    "kv_get",
    "kv_put",
    "kv_store_adt",
    "lock_table_adt",
    "seq_uid",
    "sessioned_adt",
    "untag_command",
]
