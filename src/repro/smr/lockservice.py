"""A Chubby-style distributed lock service on speculative SMR.

The paper motivates message-passing consensus with exactly this
application: "Notable use cases of consensus in message-passing systems
include Google's Chubby distributed lock service".  This module derives a
lock service from the replicated log the same way the KV store is derived
— define the lock-table ADT, replicate the commands, apply the output
function to the linearized prefix (Section 6's universal-ADT recipe).

Lock semantics (test-and-set style, no leases — the simulator has no
client failures to expire):

* ``acquire(lock, owner)``  → ``("granted", True)`` iff the lock was free
  (the owner then holds it), else ``("granted", False)``;
* ``release(lock, owner)``  → ``("released", True)`` iff the caller held
  the lock, else ``("released", False)``;
* ``holder(lock)``          → ``("holder", owner_or_None)``.

Because the commands are linearized by the replicated log, mutual
exclusion is global: at most one owner per lock at every log prefix —
checked as an invariant over the applied log in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from ..core.actions import Invocation, Response
from ..core.adt import ADT
from ..core.traces import Trace
from .replica import CommandOutcome, SpeculativeSMR
from .universal import UniversalFrontend


def acquire(lock: Hashable, owner: Hashable) -> Tuple:
    """Lock command: try to take ``lock`` for ``owner``."""
    return ("acquire", lock, owner)


def release(lock: Hashable, owner: Hashable) -> Tuple:
    """Lock command: give ``lock`` back (only the holder may)."""
    return ("release", lock, owner)


def holder(lock: Hashable) -> Tuple:
    """Lock command: query the current holder."""
    return ("holder", lock)


def lock_table_adt() -> ADT:
    """The lock-table ADT: a map lock -> holder, test-and-set semantics."""

    def is_input(payload) -> bool:
        if not isinstance(payload, tuple) or not payload:
            return False
        if payload[0] in ("acquire", "release"):
            return len(payload) == 3
        if payload[0] == "holder":
            return len(payload) == 2
        return False

    def is_output(payload) -> bool:
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] in ("granted", "released", "holder")
        )

    def transition(state, input):
        table = dict(state)
        op = input[0]
        if op == "acquire":
            _, lock, owner = input
            if table.get(lock) is None:
                table[lock] = owner
                return _freeze(table), ("granted", True)
            return state, ("granted", False)
        if op == "release":
            _, lock, owner = input
            if table.get(lock) == owner:
                del table[lock]
                return _freeze(table), ("released", True)
            return state, ("released", False)
        _, lock = input
        return state, ("holder", table.get(lock))

    return ADT("lock_table", (), transition, is_input, is_output)


def _freeze(table: Dict) -> Tuple:
    return tuple(sorted(table.items(), key=repr))


@dataclass
class LockResult:
    """A completed lock operation with its derived response."""

    client: Hashable
    command: Tuple
    response: Tuple
    outcome: CommandOutcome


class LockService:
    """Client-facing lock API over :class:`SpeculativeSMR`.

    Operations of one client are serialized (the paper's sequential-client
    model); concurrent clients race through the replicated log, and the
    log order decides who gets the lock.
    """

    def __init__(
        self,
        n_servers: int = 3,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
    ) -> None:
        self.smr = SpeculativeSMR(
            n_servers=n_servers, seed=seed, delay=delay, loss_rate=loss_rate
        )
        self.frontend = UniversalFrontend(lock_table_adt())
        self.results: List[LockResult] = []
        self.smr.on_commit = self._on_commit
        self._seq = 0
        self._pending: Dict[Tuple, Tuple[Hashable, Tuple]] = {}
        self._busy: Dict[Hashable, bool] = {}
        self._queues: Dict[Hashable, List[Tuple]] = {}
        self._events: List[Tuple] = []

    # -- client API ---------------------------------------------------------

    def acquire(self, client: Hashable, lock: Hashable, at: float = 0.0) -> None:
        """Schedule an acquire attempt (owner = the calling client)."""
        self._submit(client, acquire(lock, client), at)

    def release(self, client: Hashable, lock: Hashable, at: float = 0.0) -> None:
        """Schedule a release (only succeeds for the holder)."""
        self._submit(client, release(lock, client), at)

    def holder_of(self, client: Hashable, lock: Hashable, at: float = 0.0) -> None:
        """Schedule a holder query."""
        self._submit(client, holder(lock), at)

    # -- plumbing -----------------------------------------------------------

    def _submit(self, client: Hashable, command: Tuple, at: float) -> None:
        def arrive() -> None:
            if self._busy.get(client):
                self._queues.setdefault(client, []).append(command)
            else:
                self._start(client, command)

        self.smr.sim.schedule(at, arrive)

    def _start(self, client: Hashable, command: Tuple) -> None:
        self._busy[client] = True
        self._seq += 1
        tagged = command + (("seq", self._seq),)
        self._pending[tagged] = (client, command)
        self._events.append(("inv", client, command, None))
        self.smr.submit(client, tagged, at=0.0)

    def _on_commit(self, outcome: CommandOutcome) -> None:
        client, command = self._pending[outcome.command]
        history = tuple(
            c[:-1]
            for slot, c in sorted(self.smr.log.items())
            if slot <= outcome.slot
        )
        response = self.frontend.respond(history)
        self.results.append(
            LockResult(
                client=client,
                command=command,
                response=response,
                outcome=outcome,
            )
        )
        self._events.append(("res", client, command, response))
        self._busy[client] = False
        queued = self._queues.get(client)
        if queued:
            self._start(client, queued.pop(0))

    def run(self, until: Optional[float] = None) -> None:
        """Drive the underlying simulation."""
        self.smr.run(until=until)

    def interface_trace(self) -> Trace:
        """The client-level trace, checkable against Lin[lock_table]."""
        actions = []
        for kind, client, command, response in self._events:
            if kind == "inv":
                actions.append(Invocation(client, 1, command))
            else:
                actions.append(Response(client, 1, command, response))
        return Trace(actions)

    def table(self) -> Dict[Hashable, Hashable]:
        """The lock table after the committed log prefix."""
        adt = lock_table_adt()
        history = tuple(c[:-1] for c in self.smr.committed_log())
        state, _ = adt.run(history)
        return dict(state)

    def mutual_exclusion_holds(self) -> bool:
        """At every log prefix, each lock has at most one holder.

        The ADT state is a map, so this is structural; what the check
        adds is that *grants* are exclusive: replaying the log, no
        successful acquire happens while the lock is held.
        """
        adt = lock_table_adt()
        state = adt.initial_state
        for command in self.smr.committed_log():
            untagged = command[:-1]
            if untagged[0] == "acquire":
                table = dict(state)
                _, lock, owner = untagged
                held = table.get(lock) is not None
                state, output = adt.transition(state, untagged)
                if output == ("granted", True) and held:
                    return False
            else:
                state, _ = adt.transition(state, untagged)
        return True
