"""Command-line entry point: experiments, the fault campaign, and the
networked runtime.

Usage::

    python -m repro              # list experiments and subcommands
    python -m repro all          # run every experiment harness
    python -m repro e1 e6        # run selected experiments
    python -m repro examples     # run the example scripts
    python -m repro nemesis [N] [BASE_SEED] [--jobs N]  # fault campaign
    python -m repro nemesis 3 0 --net [--amnesiac I]    # live-cluster chaos
    python -m repro nemesis 3 5 --retry-storm           # exactly-once storm
    python -m repro nemesis 2 0 --net --race-mutant     # sanitizer canary
    python -m repro harness [--quick|--full] [...]      # benchmark harness
    python -m repro serve --replicas 3 --port-base 9000 # TCP cluster
    python -m repro loadgen --replicas 3 --clients 8 --ops 200 --seed 0
    python -m repro loadgen --shards 2 --monitor        # checked live
    python -m repro monitor --replay artifact.json      # stream a trace
    python -m repro monitor --watch --port-base 9000    # probe a cluster
    python -m repro lint [--deep] [--rules IDS] [--baseline] [PATH...]
    python -m repro lint --explain RD08                 # rule doc + examples

Each experiment prints the table/series described in EXPERIMENTS.md.
``nemesis`` prints one line per run — verdict, degradation metrics,
network counters and the full fault schedule with its seed — so any run
can be reproduced from its printed line alone; ``--jobs N`` fans the
runs across N processes without changing a single output line.
``nemesis --net`` runs the same discipline against live localhost TCP
clusters (kill/restart churn with WAL recovery, loss bursts,
partitions); ``--amnesiac I`` disables replica I's WAL — the durability
canary the campaign must catch as a linearizability violation.
``nemesis --retry-storm`` runs the exactly-once campaign instead:
duplicate-delivery windows, loss bursts violent enough to force client
retries and hedges, and a kill/restart pair, all on a replicated
counter whose applied state must equal the distinct increments;
``--no-dedup`` disables the session seam and inverts the exit code (the
mutant must be *caught*).
``nemesis --net --race-mutant`` drives traffic through a pipeline whose
slot claims suspend mid-critical-section and arms the runtime
interleaving sanitizer; the exit code inverts (every run must record a
catch) — the live cross-check of the static RD08 rule.
``harness`` runs the benchmark regression harness
(``benchmarks/harness.py``), writing machine-readable ``BENCH_*.json``.
``serve`` hosts a replica cluster on real TCP ports until interrupted;
``loadgen`` drives a closed-loop workload against a fresh cluster and
checks the recorded wire-level history for linearizability.
``--monitor`` (on both) additionally streams every event through the
online :mod:`repro.monitor` checker *during* the run — fail-fast on the
first violation, bounded memory via GC of decided prefixes — and
``monitor`` runs the same checker standalone: ``--replay FILE`` streams
a recorded artifact, ``--watch`` probes a separately-served cluster
with a recording canary client (see docs/MONITORING.md).
``lint`` runs the protocol-aware static analysis pass
(:mod:`repro.analysis`) — determinism, durability, atomicity,
async-hygiene and IOA well-formedness rules — over ``src/``, exiting
nonzero on any non-baselined finding; ``--deep`` builds the project
call graph and adds the interprocedural rules (RD08 interleaving
races, path-sensitive RD02 durability), ``--rules``/``--explain``
select and document individual rules (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

EXPERIMENTS = {
    "f1": ("bench_adts", "Figure 1 — consensus specification census"),
    "e1": ("bench_latency", "2 vs 3 message delays"),
    "e2": ("bench_degradation", "contention / crash degradation"),
    "e3": ("bench_checkers", "Theorem 1 agreement census + checker ablation"),
    "e4": ("bench_composition", "Theorems 5 and 2 censuses + switch ablation"),
    "e5": ("bench_invariants", "invariants I1-I5 under adversity"),
    "e6": ("bench_ioa", "model-checked composition theorem"),
    "e7": ("bench_shared_memory", "registers-vs-CAS census (RCons/CASCons)"),
    "e9": ("bench_smr", "speculative SMR / replicated KV store"),
    "e10": ("bench_faults", "nemesis campaigns / resilience under faults"),
    "e11": ("bench_net", "2 vs 3 message delays over real TCP sockets"),
    "e12": ("bench_recovery", "WAL recovery: replay cost + restart dip"),
    "e13": ("bench_grayfaults", "gray failures: fast-path ratio + recovery"),
    "e14": ("bench_sessions", "exactly-once sessions: storm + overhead"),
    "sweep": (
        "bench_enumeration",
        "exhaustive trace-level Theorem-5 sweeps",
    ),
}

EXAMPLES = [
    "quickstart.py",
    "mp_consensus.py",
    "sm_consensus.py",
    "smr_kv_store.py",
    "lock_service.py",
    "custom_phase.py",
]

#: names that dispatch to argparse subparsers; anything else is an
#: experiment key for the implicit ``run`` subcommand
SUBCOMMANDS = (
    "run", "nemesis", "harness", "serve", "loadgen", "monitor", "lint",
)


def run_bench(module_name: str) -> None:
    """Import a benchmark harness by path and run its main()."""
    path = os.path.join(ROOT, "benchmarks", f"{module_name}.py")
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def run_examples() -> None:
    for script in EXAMPLES:
        print(f"\n{'#' * 70}\n# examples/{script}\n{'#' * 70}")
        subprocess.run(
            [sys.executable, os.path.join(ROOT, "examples", script)],
            check=True,
        )


def list_experiments() -> None:
    print(__doc__)
    print("experiments:")
    for key, (module, title) in EXPERIMENTS.items():
        print(f"  {key:<5} {title}  ({module}.py)")
    print("  examples   run the example scripts")


def cmd_run(args: argparse.Namespace) -> int:
    """Run experiment harnesses by key (the historical default)."""
    names = [name.lower() for name in args.experiments]
    if names == ["all"]:
        names = list(EXPERIMENTS)
    for name in names:
        if name == "examples":
            run_examples()
            continue
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; run with no args to list")
            return 1
        module, title = EXPERIMENTS[name]
        print(f"\n{'#' * 70}\n# {name.upper()}: {title}\n{'#' * 70}")
        run_bench(module)
    return 0


def cmd_nemesis(args: argparse.Namespace) -> int:
    """Run a fault-injection campaign, one replayable line per run."""
    if args.retry_storm:
        from repro.faults import run_retry_storm

        results = run_retry_storm(
            n_schedules=args.n_schedules,
            base_seed=args.base_seed,
            dedup=not args.no_dedup,
            artifact_dir=args.artifact_dir,
        )
        ok = all(r.ok for r in results)
        caught = sum(1 for r in results if r.caught)
        print()
        print(
            f"retry-storm: {len(results)} run(s), "
            f"{'all exactly-once' if ok else f'{caught} violation(s) caught'}"
        )
        if args.no_dedup:
            # mutant mode exists to prove the checkers catch the bug
            return 0 if caught else 1
        return 0 if ok else 1

    if args.net:
        from repro.faults import run_net_campaign

        report = run_net_campaign(
            n_schedules=args.n_schedules,
            base_seed=args.base_seed,
            amnesiac=args.amnesiac,
            shrink=not args.no_shrink,
            artifact_dir=args.artifact_dir,
            pipelined=args.pipelined,
            codec=args.codec,
            group_commit=args.group_commit,
            monitor=args.monitor,
            race_mutant=args.race_mutant,
            sanitize=args.sanitize or args.race_mutant,
        )
        print()
        print(report.summary())
        if args.race_mutant:
            # mutant mode exists to prove the sanitizer catches the race
            caught = sum(1 for r in report.runs if r.sanitizer_caught)
            print(
                f"race-mutant: sanitizer caught the interleaving in "
                f"{caught}/{len(report.runs)} run(s)"
            )
            return 0 if caught == len(report.runs) and report.runs else 1
        return 0 if report.all_linearizable else 1

    from repro.faults import run_campaign

    report = run_campaign(
        n_schedules=args.n_schedules,
        base_seed=args.base_seed,
        verbose=True,
        jobs=args.jobs,
    )
    print()
    print(report.summary())
    return 0 if report.all_linearizable else 1


def cmd_harness(args: argparse.Namespace) -> int:
    """Run the benchmark regression harness (benchmarks/harness.py)."""
    path = os.path.join(ROOT, "benchmarks", "harness.py")
    spec = importlib.util.spec_from_file_location("harness", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main(args.args)


def cmd_serve(args: argparse.Namespace) -> int:
    """Host a replica cluster over TCP until interrupted."""
    import asyncio

    from repro.net import LocalCluster, Supervisor

    async def serve() -> int:
        cluster = LocalCluster(
            n_servers=args.replicas,
            host=args.host,
            port_base=args.port_base,
            wal_root=args.wal_dir,
        )
        await cluster.start()
        supervisor = None
        if args.supervise:
            supervisor = Supervisor(cluster)
            supervisor.start()
        for node in cluster.nodes:
            print(f"  {node.endpoint} listening on {args.host}:{node.port}")
        if args.wal_dir:
            print(f"  WALs under {args.wal_dir}")
        if supervisor is not None:
            print("  supervisor: dead replicas restart from their WALs")
        probe = tap = None
        if args.monitor:
            from repro.monitor import StreamingMonitor
            from repro.monitor.cli import make_probe
            from repro.smr.universal import kv_store_adt

            probe, tap = make_probe(
                cluster.client_transport("monitor-probe"),
                args.replicas,
                StreamingMonitor(kv_store_adt()),
            )
            print(
                f"  monitor: streaming canary probes every "
                f"{args.monitor_interval}s (fail-fast on violation)"
            )
        print("serving; interrupt to stop")
        try:
            if probe is not None and tap is not None:
                from repro.monitor.cli import probe_loop

                report = await probe_loop(
                    probe, tap, None, args.monitor_interval
                )
                print(report.summary())
                return 1 if report.verdict == "violation" else 0
            await asyncio.Event().wait()
            return 0
        finally:
            if supervisor is not None:
                await supervisor.stop()
            await cluster.stop()

    try:
        return asyncio.run(serve())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a closed-loop load and check the history it recorded."""
    from repro.net import run_loadgen

    report = run_loadgen(
        replicas=args.replicas,
        clients=args.clients,
        ops=args.ops,
        seed=args.seed,
        kill=args.kill,
        kill_after=args.kill_after,
        op_timeout=args.op_timeout,
        quorum_timeout=args.quorum_timeout,
        artifact=args.artifact,
        wal_root=args.wal_dir,
        shards=args.shards,
        pipeline=args.pipeline,
        window=args.window,
        batch=args.batch,
        codec=args.codec,
        group_commit=args.group_commit,
        check=not args.no_check,
        monitor=args.monitor,
    )
    print(report.summary())
    if args.monitor and report.monitor_verdict == "violation":
        return 1
    if args.no_check:
        return 0
    return 0 if report.linearizable else 1


def cmd_monitor(args: argparse.Namespace) -> int:
    """Run the streaming monitor standalone: replay or live watch."""
    import asyncio
    import json

    from repro.monitor.cli import (
        exit_code,
        load_history,
        replay_history,
        watch_cluster,
    )

    def write_witness(witness) -> None:
        if args.witness and witness is not None:
            with open(args.witness, "w", encoding="utf-8") as handle:
                json.dump(witness, handle, indent=2, default=repr)
            print(f"  witness written to {args.witness}")

    if args.replay:
        shards = load_history(args.replay)
        verdict, reason, reports = replay_history(
            shards,
            node_limit=args.node_limit,
            config_limit=args.config_limit,
        )
        for index, item in enumerate(reports):
            label = f"shard{index}: " if len(reports) > 1 else ""
            print(f"  {label}{item.summary()}")
        line = f"monitor replay: {verdict}"
        if reason:
            line += f" -- {reason}"
        print(line)
        write_witness(
            next((r.witness for r in reports if r.witness is not None), None)
        )
        return exit_code(verdict)

    if args.watch:
        report = asyncio.run(
            watch_cluster(
                args.host,
                args.port_base,
                args.replicas,
                ops=args.ops,
                interval=args.interval,
                node_limit=args.node_limit,
                config_limit=args.config_limit,
            )
        )
        print(report.summary())
        write_witness(report.witness)
        return exit_code(report.verdict)

    print("monitor: pass --replay FILE or --watch (see --help)")
    return 2


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the protocol-aware static analysis pass (repro.analysis)."""
    from repro.analysis.cli import run_from_args

    return run_from_args(args)


def run_nemesis(argv) -> int:
    """Importable nemesis entry point: usage errors return 1, not exit."""
    try:
        args = build_parser().parse_args(["nemesis", *argv])
    except SystemExit:
        return 1
    return cmd_nemesis(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="speculative-linearizability experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run experiment harnesses by key")
    p_run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help="experiment keys (e1..e11, f1, sweep), 'all' or 'examples'",
    )
    p_run.set_defaults(func=cmd_run)

    p_nem = sub.add_parser("nemesis", help="run a fault-injection campaign")
    p_nem.add_argument("n_schedules", nargs="?", type=int, default=20)
    p_nem.add_argument("base_seed", nargs="?", type=int, default=0)
    p_nem.add_argument("--jobs", type=int, default=1)
    p_nem.add_argument(
        "--net",
        action="store_true",
        help="attack live TCP clusters (kill/restart, loss, partitions)",
    )
    p_nem.add_argument(
        "--amnesiac",
        type=int,
        default=None,
        metavar="NODE",
        help="disable this replica's WAL (the durability canary)",
    )
    p_nem.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip delta-debugging violating schedules (live re-runs)",
    )
    p_nem.add_argument(
        "--artifact-dir",
        default=None,
        help="write per-run history + verdict JSON artifacts here",
    )
    p_nem.add_argument(
        "--pipelined",
        action="store_true",
        help="with --net: drive main traffic through the batching "
        "SlotPipeline instead of per-op probing clients",
    )
    p_nem.add_argument(
        "--codec",
        choices=("json", "binary"),
        default=None,
        help="with --net: wire codec for the cluster under attack",
    )
    p_nem.add_argument(
        "--group-commit",
        action="store_true",
        help="with --net: coalesce WAL appends into shared fsyncs",
    )
    p_nem.add_argument(
        "--monitor",
        action="store_true",
        help="with --net: stream every run's history through a live "
        "linearizability monitor (fail-fast, mid-run witness)",
    )
    p_nem.add_argument(
        "--race-mutant",
        action="store_true",
        help="with --net: drive traffic through the RacySlotPipeline "
        "whose slot claims suspend mid-critical-section (implies "
        "--pipelined and --sanitize); exit 0 only if the runtime "
        "sanitizer catches the interleaving in every run",
    )
    p_nem.add_argument(
        "--sanitize",
        action="store_true",
        help="with --net: arm the runtime interleaving sanitizer "
        "(repro.analysis.sanitizer) for every run",
    )
    p_nem.add_argument(
        "--retry-storm",
        action="store_true",
        help="run the exactly-once campaign instead: duplicated frames, "
        "timeout-forced retries, hedges and coordinator failover on a "
        "replicated counter (live clusters)",
    )
    p_nem.add_argument(
        "--no-dedup",
        action="store_true",
        help="with --retry-storm: disable the session seam (the mutant); "
        "exit 0 only if the checkers catch the double-apply",
    )
    p_nem.set_defaults(func=cmd_nemesis)

    p_har = sub.add_parser("harness", help="run the benchmark harness")
    p_har.add_argument("args", nargs=argparse.REMAINDER)
    p_har.set_defaults(func=cmd_harness)

    p_srv = sub.add_parser("serve", help="host a TCP replica cluster")
    p_srv.add_argument("--replicas", type=int, default=3)
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port-base", type=int, default=9000)
    p_srv.add_argument(
        "--wal-dir",
        default=None,
        help="persist each replica's WAL under this directory",
    )
    p_srv.add_argument(
        "--supervise",
        action="store_true",
        help="auto-restart dead replicas from their WALs",
    )
    p_srv.add_argument(
        "--monitor",
        action="store_true",
        help="run streaming canary probes against the served cluster; "
        "exit 1 the moment a probe history stops being linearizable",
    )
    p_srv.add_argument(
        "--monitor-interval",
        type=float,
        default=0.5,
        help="seconds between canary probes (with --monitor)",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadgen", help="run a checked closed-loop load over TCP"
    )
    p_load.add_argument("--replicas", type=int, default=3)
    p_load.add_argument("--clients", type=int, default=8)
    p_load.add_argument("--ops", type=int, default=200)
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument(
        "--kill",
        type=int,
        default=None,
        metavar="NODE",
        help="kill this replica index mid-run",
    )
    p_load.add_argument(
        "--kill-after",
        type=float,
        default=0.25,
        help="fraction of ops committed before the kill fires",
    )
    p_load.add_argument("--op-timeout", type=float, default=5.0)
    p_load.add_argument("--quorum-timeout", type=float, default=0.15)
    p_load.add_argument(
        "--artifact",
        default=None,
        help="write the history + verdict JSON artifact here",
    )
    p_load.add_argument(
        "--wal-dir",
        default=None,
        help="give each replica a WAL under this directory",
    )
    p_load.add_argument(
        "--shards",
        type=int,
        default=1,
        help="independent replica groups routed by key (implies --pipeline)",
    )
    p_load.add_argument(
        "--pipeline",
        action="store_true",
        help="use the batching SlotPipeline data plane",
    )
    p_load.add_argument(
        "--window",
        type=int,
        default=8,
        help="in-flight decrees per shard (pipeline mode)",
    )
    p_load.add_argument(
        "--batch",
        type=int,
        default=16,
        help="max ops coalesced into one decree (pipeline mode)",
    )
    p_load.add_argument(
        "--codec",
        choices=("json", "binary"),
        default=None,
        help="wire codec (default: json)",
    )
    p_load.add_argument(
        "--group-commit",
        action="store_true",
        help="coalesce WAL fsyncs per event-loop tick",
    )
    p_load.add_argument(
        "--no-check",
        action="store_true",
        help="skip the linearizability verdict (pure benchmarking)",
    )
    p_load.add_argument(
        "--monitor",
        action="store_true",
        help="check the history online while the run is in flight "
        "(streaming monitor, fail-fast, bounded memory)",
    )
    p_load.set_defaults(func=cmd_loadgen)

    p_mon = sub.add_parser(
        "monitor",
        help="stream a recorded history or watch a live cluster",
    )
    p_mon.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="stream a loadgen/nemesis history artifact through the "
        "monitor (per-shard monitors for sharded artifacts)",
    )
    p_mon.add_argument(
        "--watch",
        action="store_true",
        help="probe a separately-served cluster (see `serve`) with a "
        "recording canary client checked online",
    )
    p_mon.add_argument("--host", default="127.0.0.1")
    p_mon.add_argument(
        "--port-base",
        type=int,
        default=9000,
        help="with --watch: first replica port (node i at port-base+i)",
    )
    p_mon.add_argument("--replicas", type=int, default=3)
    p_mon.add_argument(
        "--ops",
        type=int,
        default=40,
        help="with --watch: number of canary probes to issue",
    )
    p_mon.add_argument(
        "--interval",
        type=float,
        default=0.05,
        help="with --watch: seconds between canary probes",
    )
    p_mon.add_argument(
        "--node-limit",
        type=int,
        default=None,
        help="per-event search budget (exceeding it => unknown)",
    )
    p_mon.add_argument(
        "--config-limit",
        type=int,
        default=None,
        help="frontier-size budget per key (exceeding it => unknown)",
    )
    p_mon.add_argument(
        "--witness",
        default=None,
        metavar="OUT",
        help="write the shrunken violation witness JSON here",
    )
    p_mon.set_defaults(func=cmd_monitor)

    p_lint = sub.add_parser(
        "lint", help="run the protocol-aware static analysis pass"
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    return parser


def main(argv) -> int:
    if not argv:
        list_experiments()
        return 0
    # argparse.REMAINDER inside a subparser cannot capture leading
    # `-`-prefixed tokens, so the harness passthrough dispatches here.
    if argv[0].lower() == "harness":
        return cmd_harness(argparse.Namespace(args=list(argv[1:])))
    # Bare experiment keys keep working: `python -m repro e1 e6` is
    # sugar for `python -m repro run e1 e6`.
    if argv[0].lower() not in SUBCOMMANDS and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    elif argv[0].lower() in SUBCOMMANDS:
        argv = [argv[0].lower(), *argv[1:]]
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    try:
        code = main(sys.argv[1:])
        sys.stdout.flush()
    except BrokenPipeError:
        # the consumer (e.g. `| head`) closed the pipe early: not an error
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
