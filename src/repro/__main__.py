"""Command-line entry point: regenerate the paper's experiments.

Usage::

    python -m repro              # list experiments
    python -m repro all          # run every harness
    python -m repro e1 e6        # run selected experiments
    python -m repro examples     # run the example scripts
    python -m repro nemesis [N] [BASE_SEED] [--jobs N]  # fault campaign
    python -m repro harness [--quick|--full] [...]      # benchmark harness

Each experiment prints the table/series described in EXPERIMENTS.md.
``nemesis`` prints one line per run — verdict, degradation metrics,
network counters and the full fault schedule with its seed — so any run
can be reproduced from its printed line alone; ``--jobs N`` fans the
runs across N processes without changing a single output line.
``harness`` runs the benchmark regression harness
(``benchmarks/harness.py``), writing machine-readable ``BENCH_*.json``.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

EXPERIMENTS = {
    "f1": ("bench_adts", "Figure 1 — consensus specification census"),
    "e1": ("bench_latency", "2 vs 3 message delays"),
    "e2": ("bench_degradation", "contention / crash degradation"),
    "e3": ("bench_checkers", "Theorem 1 agreement census + checker ablation"),
    "e4": ("bench_composition", "Theorems 5 and 2 censuses + switch ablation"),
    "e5": ("bench_invariants", "invariants I1-I5 under adversity"),
    "e6": ("bench_ioa", "model-checked composition theorem"),
    "e7": ("bench_shared_memory", "registers-vs-CAS census (RCons/CASCons)"),
    "e9": ("bench_smr", "speculative SMR / replicated KV store"),
    "e10": ("bench_faults", "nemesis campaigns / resilience under faults"),
    "sweep": (
        "bench_enumeration",
        "exhaustive trace-level Theorem-5 sweeps",
    ),
}

EXAMPLES = [
    "quickstart.py",
    "mp_consensus.py",
    "sm_consensus.py",
    "smr_kv_store.py",
    "lock_service.py",
    "custom_phase.py",
]


def run_bench(module_name: str) -> None:
    """Import a benchmark harness by path and run its main()."""
    path = os.path.join(ROOT, "benchmarks", f"{module_name}.py")
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def run_nemesis(argv) -> int:
    """Run a fault-injection campaign, one replayable line per run."""
    from repro.faults import run_campaign

    usage = "usage: python -m repro nemesis [N] [BASE_SEED] [--jobs N]"
    jobs = 1
    positional = []
    it = iter(argv)
    try:
        for arg in it:
            if arg == "--jobs":
                jobs = int(next(it))
            elif arg.startswith("--jobs="):
                jobs = int(arg.split("=", 1)[1])
            else:
                positional.append(int(arg))
    except (ValueError, StopIteration):
        print(usage)
        return 1
    if len(positional) > 2:
        print(usage)
        return 1
    n_schedules = positional[0] if positional else 20
    base_seed = positional[1] if len(positional) > 1 else 0
    report = run_campaign(
        n_schedules=n_schedules,
        base_seed=base_seed,
        verbose=True,
        jobs=jobs,
    )
    print()
    print(report.summary())
    return 0 if report.all_linearizable else 1


def run_harness(argv) -> int:
    """Run the benchmark regression harness (benchmarks/harness.py)."""
    path = os.path.join(ROOT, "benchmarks", "harness.py")
    spec = importlib.util.spec_from_file_location("harness", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.main(argv)


def run_examples() -> None:
    for script in EXAMPLES:
        print(f"\n{'#' * 70}\n# examples/{script}\n{'#' * 70}")
        subprocess.run(
            [sys.executable, os.path.join(ROOT, "examples", script)],
            check=True,
        )


def main(argv) -> int:
    args = [a.lower() for a in argv]
    if not args:
        print(__doc__)
        print("experiments:")
        for key, (module, title) in EXPERIMENTS.items():
            print(f"  {key:<4} {title}  ({module}.py)")
        print("  examples   run the example scripts")
        return 0
    if args[0] == "nemesis":
        return run_nemesis(args[1:])
    if args[0] == "harness":
        return run_harness(argv[1:])
    if args == ["all"]:
        args = list(EXPERIMENTS)
    for arg in args:
        if arg == "examples":
            run_examples()
            continue
        if arg not in EXPERIMENTS:
            print(f"unknown experiment {arg!r}; run with no args to list")
            return 1
        module, title = EXPERIMENTS[arg]
        print(f"\n{'#' * 70}\n# {arg.upper()}: {title}\n{'#' * 70}")
        run_bench(module)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
