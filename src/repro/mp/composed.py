"""The composed speculative consensus of Section 2 — Quorum + Backup.

"By combining Quorum and Backup we obtain a system that is optimized for
contention-free and fault-free loads while still remaining correct in all
other conditions under which the Backup is correct."

:class:`ComposedConsensus` assembles the full simulated deployment:

* each of ``n_servers`` physical servers hosts three roles — a Quorum
  server, a Paxos acceptor and a (potential) Paxos coordinator — which
  crash together;
* each logical client drives a :class:`~repro.mp.quorum.QuorumClient`
  first and, if it switches, a :class:`~repro.mp.backup.BackupClient`;
* every interface event is recorded as a phase-tagged action
  (invocations and responses tagged by phase, switches tagged 2), so the
  recorded trace is directly checkable against ``SLin`` / ``Lin`` and the
  invariants I1-I5;
* per-client latency (virtual time = message delays under the default
  unit-delay network) and the taken path (fast/slow) feed the benchmark
  harness.

Two reference deployments, :class:`QuorumOnly` and :class:`PaxosOnly`,
expose each phase in isolation for the latency baselines of the paper's
headline claim (2 vs 3 message delays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from ..core.adt import decide, propose
from ..core.recording import TraceRecorder
from ..core.traces import Trace
from .backoff import BackoffPolicy
from .backup import BackupClient
from .paxos import PaxosAcceptor, PaxosClient, PaxosCoordinator
from .quorum import QuorumClient, QuorumServer
from .sim import Network, NetworkStats, Simulator


@dataclass
class ClientOutcome:
    """Per-proposal record used by tests and benchmarks."""

    client: Hashable
    value: Hashable
    start: float
    decided_value: Optional[Hashable] = None
    decide_time: Optional[float] = None
    switched: bool = False
    switch_value: Optional[Hashable] = None
    switch_time: Optional[float] = None
    gave_up: bool = False
    give_up_time: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Virtual-time latency (= message delays with a unit network)."""
        if self.decide_time is None:
            return None
        return self.decide_time - self.start

    @property
    def path(self) -> str:
        """'fast' (decided in Quorum), 'slow' (via Backup), 'gave_up'
        (retry budget exhausted) or 'none' (still pending)."""
        if self.decided_value is None:
            return "gave_up" if self.gave_up else "none"
        return "slow" if self.switched else "fast"


class _SystemBase:
    """Shared plumbing: simulator, network, servers and the recorder."""

    def __init__(
        self,
        n_servers: int = 3,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ) -> None:
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim,
            delay=delay,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
        )
        self.n_servers = n_servers
        self.outcomes: Dict[Hashable, ClientOutcome] = {}
        self.recorder = TraceRecorder(phase_bounds=(1, 3))

    def run(self, until: Optional[float] = None, max_events: int = 200000) -> None:
        """Drive the simulation to quiescence (or the given horizon)."""
        self.sim.run(until=until, max_events=max_events)

    def trace(self) -> Trace:
        """The recorded interface trace."""
        return self.recorder.trace()

    @property
    def stats(self) -> NetworkStats:
        """Network counters (sent/delivered/lost/...)."""
        return self.network.stats


class ComposedConsensus(_SystemBase):
    """Quorum composed with Backup: the paper's optimized consensus."""

    def __init__(
        self,
        n_servers: int = 3,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        quorum_timeout: float = 6.0,
        expected_clients: int = 8,
        backoff: Optional[BackoffPolicy] = None,
        acceptor_cls: type = PaxosAcceptor,
    ) -> None:
        super().__init__(n_servers, seed, delay, loss_rate, duplicate_rate)
        self.backoff = backoff
        self.quorum_servers = [
            self.network.register(QuorumServer(("qs", i)))
            for i in range(n_servers)
        ]
        self.acceptors = [
            self.network.register(acceptor_cls(("acc", i)))
            for i in range(n_servers)
        ]
        self.coordinators = [
            self.network.register(
                PaxosCoordinator(
                    ("coord", i),
                    rank=i,
                    n_coordinators=n_servers,
                    acceptors=[("acc", j) for j in range(n_servers)],
                    pre_prepare=(i == 0),
                )
            )
            for i in range(n_servers)
        ]
        self.quorum_timeout = quorum_timeout
        self._learners = [
            ("bcli", c) for c in range(expected_clients)
        ] + [("coord", i) for i in range(n_servers)]
        for acceptor in self.acceptors:
            acceptor.register_learners(self._learners)
        self._client_count = 0
        self.expected_clients = expected_clients

    def server_pids(self, index: int) -> Tuple[Hashable, ...]:
        """The pids of every role hosted by physical server ``index``."""
        return (("qs", index), ("acc", index), ("coord", index))

    def crash_server(self, index: int, at: float) -> None:
        """Crash all three roles of physical server ``index`` at ``at``."""
        for pid in self.server_pids(index):
            self.network.crash_at(pid, at)

    def recover_server(self, index: int, at: float) -> None:
        """Restart all three roles of server ``index`` at ``at``.

        The acceptor and quorum server come back with their durable
        state; the coordinator restarts blank (diskless).
        """
        for pid in self.server_pids(index):
            self.network.recover_at(pid, at)

    def propose(
        self, client: Hashable, value: Hashable, at: float = 0.0
    ) -> ClientOutcome:
        """Schedule ``client`` to propose ``value`` at virtual time ``at``."""
        index = self._client_count
        self._client_count += 1
        if index >= self.expected_clients:
            raise ValueError(
                "more proposals than expected_clients; raise the limit"
            )
        outcome = ClientOutcome(client=client, value=value, start=at)
        self.outcomes[client] = outcome
        input = propose(value)

        def on_quorum_decide(decision: Hashable) -> None:
            outcome.decided_value = decision
            outcome.decide_time = self.network.now
            self.recorder.respond(client, 1, input, decide(decision))

        def on_quorum_switch(switch_value: Hashable) -> None:
            outcome.switched = True
            outcome.switch_value = switch_value
            outcome.switch_time = self.network.now
            self.recorder.switch(client, 2, input, switch_value)
            backup = BackupClient(
                ("bcli", index),
                coordinators=[("coord", i) for i in range(self.n_servers)],
                n_acceptors=self.n_servers,
                on_decide=on_backup_decide,
                backoff=self.backoff,
                on_give_up=on_backup_give_up,
            )
            self.network.register(backup)
            backup.switch_to_backup(switch_value)

        def on_backup_decide(decision: Hashable) -> None:
            outcome.decided_value = decision
            outcome.decide_time = self.network.now
            self.recorder.respond(client, 2, input, decide(decision))

        def on_backup_give_up() -> None:
            # Retry budget exhausted: the invocation stays pending in the
            # trace (which linearizability permits) but the outcome says
            # so explicitly instead of hanging silently.
            outcome.gave_up = True
            outcome.give_up_time = self.network.now

        def start() -> None:
            self.recorder.invoke(client, 1, input)
            timeout = self.quorum_timeout
            if self.backoff is not None:
                # Jittered initial timeout: concurrent clients stop
                # switching (and then retrying Backup) in lock-step.
                timeout = self.backoff.delay(0, key=("qcli", index))
            quorum = QuorumClient(
                ("qcli", index),
                servers=[("qs", i) for i in range(self.n_servers)],
                on_decide=on_quorum_decide,
                on_switch=on_quorum_switch,
                timeout=timeout,
            )
            self.network.register(quorum)
            quorum.propose(value)

        self.network.call_later(at, start)
        return outcome

    def first_phase_trace(self) -> Trace:
        """Projection onto the (1,2) phase: Quorum's own trace."""
        from ..core.actions import sig_phase

        return self.trace().project(sig_phase(1, 2).contains)

    def second_phase_trace(self) -> Trace:
        """Projection onto the (2,3) phase: Backup's own trace."""
        from ..core.actions import sig_phase

        return self.trace().project(sig_phase(2, 3).contains)


class QuorumOnly(_SystemBase):
    """The Quorum phase deployed alone (fast-path baseline).

    Clients that would switch simply report the switch; no Backup runs.
    """

    def __init__(
        self,
        n_servers: int = 3,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        quorum_timeout: float = 6.0,
    ) -> None:
        super().__init__(n_servers, seed, delay, loss_rate)
        self.servers = [
            self.network.register(QuorumServer(("qs", i)))
            for i in range(n_servers)
        ]
        self._client_count = 0
        self.quorum_timeout = quorum_timeout

    def crash_server(self, index: int, at: float) -> None:
        """Crash Quorum server ``index`` at virtual time ``at``."""
        self.network.crash_at(("qs", index), at)

    def propose(
        self, client: Hashable, value: Hashable, at: float = 0.0
    ) -> ClientOutcome:
        """Schedule a proposal; switches terminate the client's run."""
        index = self._client_count
        self._client_count += 1
        outcome = ClientOutcome(client=client, value=value, start=at)
        self.outcomes[client] = outcome
        input = propose(value)

        def on_decide(decision: Hashable) -> None:
            outcome.decided_value = decision
            outcome.decide_time = self.network.now
            self.recorder.respond(client, 1, input, decide(decision))

        def on_switch(switch_value: Hashable) -> None:
            outcome.switched = True
            outcome.switch_value = switch_value
            outcome.switch_time = self.network.now
            self.recorder.switch_out(client, 2, input, switch_value)

        def start() -> None:
            self.recorder.invoke(client, 1, input)
            quorum = QuorumClient(
                ("qcli", index),
                servers=[("qs", i) for i in range(self.n_servers)],
                on_decide=on_decide,
                on_switch=on_switch,
                timeout=self.quorum_timeout,
            )
            self.network.register(quorum)
            quorum.propose(value)

        self.network.call_later(at, start)
        return outcome


class PaxosOnly(_SystemBase):
    """Plain Paxos consensus (the non-speculative baseline).

    Clients submit proposals directly to the coordinated Paxos; with the
    first coordinator pre-prepared this exhibits the paper's 3-message-
    delay minimum latency.
    """

    def __init__(
        self,
        n_servers: int = 3,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        pre_prepare: bool = True,
        expected_clients: int = 8,
    ) -> None:
        super().__init__(n_servers, seed, delay, loss_rate)
        self.acceptors = [
            self.network.register(PaxosAcceptor(("acc", i)))
            for i in range(n_servers)
        ]
        self.coordinators = [
            self.network.register(
                PaxosCoordinator(
                    ("coord", i),
                    rank=i,
                    n_coordinators=n_servers,
                    acceptors=[("acc", j) for j in range(n_servers)],
                    pre_prepare=(pre_prepare and i == 0),
                )
            )
            for i in range(n_servers)
        ]
        self._learners = [
            ("pcli", c) for c in range(expected_clients)
        ] + [("coord", i) for i in range(n_servers)]
        for acceptor in self.acceptors:
            acceptor.register_learners(self._learners)
        self._client_count = 0
        self.expected_clients = expected_clients

    def crash_server(self, index: int, at: float) -> None:
        """Crash acceptor+coordinator ``index`` at virtual time ``at``."""
        for pid in (("acc", index), ("coord", index)):
            self.network.crash_at(pid, at)

    def propose(
        self, client: Hashable, value: Hashable, at: float = 0.0
    ) -> ClientOutcome:
        """Schedule a direct Paxos proposal at virtual time ``at``."""
        index = self._client_count
        self._client_count += 1
        if index >= self.expected_clients:
            raise ValueError(
                "more proposals than expected_clients; raise the limit"
            )
        outcome = ClientOutcome(client=client, value=value, start=at)
        self.outcomes[client] = outcome
        input = propose(value)

        def on_decide(decision: Hashable) -> None:
            outcome.decided_value = decision
            outcome.decide_time = self.network.now
            self.recorder.respond(client, 1, input, decide(decision))

        def start() -> None:
            self.recorder.invoke(client, 1, input)
            paxos_client = PaxosClient(
                ("pcli", index),
                coordinators=[("coord", i) for i in range(self.n_servers)],
                n_acceptors=self.n_servers,
                on_decide=on_decide,
            )
            self.network.register(paxos_client)
            paxos_client.submit(value)

        self.network.call_later(at, start)
        return outcome
