"""Single-decree Paxos — the algorithm behind the Backup phase (§2.1).

The paper uses "Lamport's Paxos algorithm where clients have the role of
proposers and learners, while servers have the role of acceptors".  This
module implements the full protocol:

* **Acceptors** (:class:`PaxosAcceptor`) keep the classical
  ``(promised, accepted_ballot, accepted_value)`` state and answer
  prepare/accept requests; on accepting they notify the registered
  learners directly, which is what gives Paxos its minimum latency of
  **three** message delays (request → accept → accepted) when a
  coordinator already holds a promise quorum.
* **Coordinators** (:class:`PaxosCoordinator`) are server-side proposers
  ranked by id.  Ballot ``b`` belongs to coordinator ``b mod n``.  A
  coordinator runs phase 1 (prepare/promise), picks the value of the
  highest-ballot acceptance reported in its promise quorum (or the first
  client request it queued), and drives phase 2 (accept/accepted).  With
  ``pre_prepare`` the first coordinator performs phase 1 before any
  request arrives — the standard steady-state optimization the paper's
  latency claim refers to.
* **Clients** (:class:`PaxosClient`) submit a value to the coordinator
  they believe is in charge, retrying round-robin on timeout, and decide
  as learners when a majority of acceptors report the same
  ``(ballot, value)`` acceptance (or when told an already-made decision).

Safety (agreement and validity, invariants I4/I5) holds under any number
of client crashes and a minority of server crashes; the test-suite
exercises crash schedules, message loss and duplication.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .backoff import BackoffPolicy, _unit_interval
from .sim import Process, Timer


class PaxosAcceptor(Process):
    """Acceptor role: the only durable memory of the protocol.

    "Durable" is literal: ``(promised, accepted_ballot, accepted_value)``
    survives a crash-recover cycle through the :class:`Process` durable
    hooks, which is exactly the stable-storage write classical Paxos
    requires before an acceptor answers.  An acceptor that *forgets* this
    state on recovery breaks agreement — see
    :class:`repro.faults.mutants.AmnesiacAcceptor`, the intentional bug
    the nemesis campaign exists to catch.
    """

    def __init__(self, pid: Hashable) -> None:
        super().__init__(pid)
        self.promised: int = -1
        self.accepted_ballot: int = -1
        self.accepted_value: Optional[Hashable] = None
        self.learners: Tuple[Hashable, ...] = ()

    def durable_state(self) -> Tuple[int, int, Optional[Hashable]]:
        """The classical acceptor triple, as written to stable storage."""
        return (self.promised, self.accepted_ballot, self.accepted_value)

    def on_recover(self, durable) -> None:
        """Restore the stable-storage triple (learner wiring is config,
        not state, and stays)."""
        self.promised, self.accepted_ballot, self.accepted_value = durable

    def register_learners(self, learners: Sequence[Hashable]) -> None:
        """Set the processes notified on acceptance (clients + servers)."""
        self.learners = tuple(learners)

    def on_message(self, src: Hashable, message: Any) -> None:
        kind = message[0]
        if kind == "prepare":
            _, ballot = message
            if ballot > self.promised:
                self.promised = ballot
                self.send(
                    src,
                    (
                        "promise",
                        ballot,
                        self.accepted_ballot,
                        self.accepted_value,
                    ),
                )
            else:
                self.send(src, ("nack", ballot, self.promised))
        elif kind == "accept":
            _, ballot, value = message
            if ballot >= self.promised:
                self.promised = ballot
                self.accepted_ballot = ballot
                self.accepted_value = value
                announcement = ("accepted", ballot, value)
                for learner in self.learners:
                    self.send(learner, announcement)
                if src not in self.learners:
                    self.send(src, announcement)
            else:
                self.send(src, ("nack", ballot, self.promised))


class PaxosCoordinator(Process):
    """Server-side proposer; ballot ``b`` is owned by coordinator
    ``b mod n_coordinators``."""

    def __init__(
        self,
        pid: Hashable,
        rank: int,
        n_coordinators: int,
        acceptors: Sequence[Hashable],
        pre_prepare: bool = False,
        retry_delay: float = 8.0,
    ) -> None:
        super().__init__(pid)
        self.rank = rank
        self.n_coordinators = n_coordinators
        self.acceptors = tuple(acceptors)
        self.retry_delay = retry_delay
        self.round = 0
        self.ballot: Optional[int] = None
        self.promises: Dict[Hashable, Tuple[int, Optional[Hashable]]] = {}
        self.has_quorum = False
        self.phase2_sent = False
        self.pending_requests: List[Hashable] = []
        self.accepted_votes: Dict[Tuple[int, Hashable], Set[Hashable]] = {}
        self.decision: Optional[Hashable] = None
        self._pre_prepare = pre_prepare
        self._retry_timer: Optional[Timer] = None

    def attach(self, network) -> None:  # noqa: D102 - inherited behaviour
        super().attach(network)
        if self._pre_prepare:
            self.call_soon(self.start_prepare)

    def adopt_decision(self, value: Hashable) -> None:
        """Install an externally learned decision.

        Decisions are stable, so adopting one that *was* made is always
        safe: the coordinator answers requests with it and never
        proposes again.  The networked runtime calls this when a
        restarting node replays its WAL's decided log, which both
        spares recovered slots a redundant Paxos round and keeps a
        pre-preparing coordinator from re-proposing on settled slots.
        """
        if self.decision is not None:
            return
        self.decision = value
        self.pending_requests = []
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    def on_recover(self, durable) -> None:
        """A coordinator is diskless: a restart clears every in-flight
        proposal attempt.  Queued requests and learned decisions were in
        volatile memory, so they are gone; clients re-drive the protocol
        through their own retries."""
        self.ballot = None
        self.promises = {}
        self.has_quorum = False
        self.phase2_sent = False
        self.pending_requests = []
        self.accepted_votes = {}
        self.decision = None
        self.round += 1
        self._retry_timer = None

    @property
    def majority(self) -> int:
        """Quorum size over the acceptors."""
        return len(self.acceptors) // 2 + 1

    def _own_ballot(self) -> int:
        return self.round * self.n_coordinators + self.rank

    def _arm_retry(self, delay: float, callback: Callable[[], None]) -> None:
        """Keep exactly one outstanding retry timer.

        Stacked timers are a livelock machine: every extra timer fires a
        fresh prepare that invalidates the in-flight promises of the
        previous one, so under a loss burst the retry frequency ratchets
        up until no ballot ever survives a round-trip.
        """
        if self._retry_timer is not None:
            self._retry_timer.cancel()
        self._retry_timer = self.set_timer(delay, callback)

    def start_prepare(self) -> None:
        """Begin phase 1 with a fresh ballot this coordinator owns."""
        if self.crashed or self.decision is not None:
            return
        self.ballot = self._own_ballot()
        self.promises = {}
        self.has_quorum = False
        self.phase2_sent = False
        self.broadcast(self.acceptors, ("prepare", self.ballot))
        self._arm_retry(self.retry_delay, self._maybe_retry)

    def _maybe_retry(self) -> None:
        if (
            self.decision is None
            and self.pending_requests
            and not self.phase2_sent
        ):
            self.round += 1
            self.start_prepare()

    def _maybe_phase2(self) -> None:
        if (
            not self.has_quorum
            or self.phase2_sent
            or self.decision is not None
        ):
            return
        # Pick the value of the highest accepted ballot among promises,
        # falling back to the first queued request.
        best: Tuple[int, Optional[Hashable]] = (-1, None)
        for accepted_ballot, accepted_value in self.promises.values():
            if accepted_ballot > best[0]:
                best = (accepted_ballot, accepted_value)
        if best[1] is not None:
            value = best[1]
        elif self.pending_requests:
            value = self.pending_requests[0]
        else:
            return  # nothing to propose yet; wait for a request
        self.phase2_sent = True
        self.broadcast(self.acceptors, ("accept", self.ballot, value))
        self._arm_retry(self.retry_delay, self._phase2_retry)

    def _phase2_retry(self) -> None:
        if self.decision is None and self.pending_requests:
            self.round += 1
            self.start_prepare()

    def on_message(self, src: Hashable, message: Any) -> None:
        kind = message[0]
        if kind == "request":
            _, value = message
            if self.decision is not None:
                self.send(src, ("decision", self.decision))
                return
            self.pending_requests.append(value)
            if self.ballot is None:
                self.start_prepare()
            else:
                self._maybe_phase2()
        elif kind == "promise":
            _, ballot, accepted_ballot, accepted_value = message
            if ballot != self.ballot:
                return
            self.promises[src] = (accepted_ballot, accepted_value)
            if len(self.promises) >= self.majority:
                self.has_quorum = True
                self._maybe_phase2()
        elif kind == "nack":
            _, ballot, promised = message
            if (
                ballot == self.ballot
                and self.pending_requests
                and self.decision is None
            ):
                # A higher ballot is active; adopt a round beyond it, but
                # re-prepare after a per-coordinator deterministic stagger
                # rather than immediately — two coordinators nacking each
                # other in lock-step otherwise duel forever.
                self.round = max(
                    self.round, promised // self.n_coordinators + 1
                )
                stagger = self.retry_delay * (
                    0.5 + _unit_interval(self.pid, promised)
                )
                self._arm_retry(stagger, self.start_prepare)
        elif kind == "accepted":
            _, ballot, value = message
            votes = self.accepted_votes.setdefault((ballot, value), set())
            votes.add(src)
            if len(votes) >= self.majority and self.decision is None:
                self.decision = value


class PaxosClient(Process):
    """Proposer/learner role played by clients (the paper's casting).

    ``submit(value)`` sends the value to the currently believed
    coordinator and retries round-robin on timeout; ``on_decide`` fires
    exactly once, when a majority of acceptors report the same acceptance
    or a coordinator relays an existing decision.

    Retries are paced by a :class:`~repro.mp.backoff.BackoffPolicy`
    (attempt ``k`` waits ``backoff.delay(k, key=pid)``).  Passing only
    ``retry_delay`` yields the degenerate fixed-delay policy of the seed
    code.  A policy with a finite ``max_retries`` turns an unreachable
    system into an explicit outcome: ``gave_up`` is set and
    ``on_give_up`` (if any) fires exactly once instead of the client
    hanging silently.
    """

    def __init__(
        self,
        pid: Hashable,
        coordinators: Sequence[Hashable],
        n_acceptors: int,
        on_decide: Callable[[Hashable], None],
        retry_delay: float = 10.0,
        backoff: Optional[BackoffPolicy] = None,
        on_give_up: Optional[Callable[[], None]] = None,
    ) -> None:
        super().__init__(pid)
        self.coordinators = tuple(coordinators)
        self.n_acceptors = n_acceptors
        self.on_decide = on_decide
        self.retry_delay = retry_delay
        self.backoff = backoff or BackoffPolicy.fixed(retry_delay)
        self.on_give_up = on_give_up
        self.value: Optional[Hashable] = None
        self.target = 0
        self.attempt = 0
        self.decided = False
        self.gave_up = False
        self.accepted_votes: Dict[Tuple[int, Hashable], Set[Hashable]] = {}
        self.timer: Optional[Timer] = None

    @property
    def majority(self) -> int:
        """Quorum size over the acceptors."""
        return self.n_acceptors // 2 + 1

    def submit(self, value: Hashable) -> None:
        """Propose ``value`` (the switch value, for the Backup phase)."""
        self.value = value
        self._send_request()

    def _send_request(self) -> None:
        if self.decided or self.gave_up or self.crashed:
            return
        self.send(
            self.coordinators[self.target % len(self.coordinators)],
            ("request", self.value),
        )
        self.timer = self.set_timer(
            self.backoff.delay(self.attempt, key=self.pid), self._on_timeout
        )

    def _on_timeout(self) -> None:
        if self.decided or self.gave_up:
            return
        if self.backoff.exhausted(self.attempt):
            self.gave_up = True
            if self.on_give_up is not None:
                self.on_give_up()
            return
        self.attempt += 1
        self.target += 1
        self._send_request()

    def _decide(self, value: Hashable) -> None:
        if self.decided or self.gave_up:
            return
        self.decided = True
        if self.timer is not None:
            self.timer.cancel()
        self.on_decide(value)

    def on_message(self, src: Hashable, message: Any) -> None:
        if self.decided or self.gave_up:
            return
        kind = message[0]
        if kind == "accepted":
            _, ballot, value = message
            votes = self.accepted_votes.setdefault((ballot, value), set())
            votes.add(src)
            if len(votes) >= self.majority:
                self._decide(value)
        elif kind == "decision":
            _, value = message
            self._decide(value)
