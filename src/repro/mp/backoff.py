"""Adaptive client timeouts: exponential backoff with deterministic jitter.

The seed code retried with *fixed* delays (``retry_delay``,
``quorum_timeout``), which has two problems under injected faults:

* synchronized clients retry in lock-step, re-creating the very
  contention that made Quorum switch in the first place;
* a client facing a dead majority retries forever — a silent hang that
  looks like a liveness bug but is really an unbounded retry budget.

:class:`BackoffPolicy` replaces both.  Delays grow geometrically up to a
cap, a jitter fraction desynchronizes concurrent clients, and an optional
retry budget turns an unreachable system into an explicit ``gave_up``
outcome surfaced by the deployment objects.

Jitter must not perturb determinism: the nemesis layer promises that one
seed reproduces one execution exactly.  The jitter for attempt ``k`` of
client ``key`` is therefore *derived*, not drawn — a hash of
``(key, k)`` mapped into ``[-jitter, +jitter]`` — so it is stable across
runs, across processes (no reliance on salted ``hash()``), and
independent of how much randomness the simulator consumed before the
timer was armed.

Delays are in virtual time, i.e. message-delay units under the default
unit-delay network — the currency of the paper's quantitative claims.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Hashable, Optional


def _unit_interval(key: Hashable, attempt: int) -> float:
    """A deterministic pseudo-random point in [0, 1) for (key, attempt)."""
    payload = repr((key, attempt)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2 ** 64


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter and a retry budget.

    ``delay(k, key)`` for attempt ``k = 0, 1, ...`` is::

        min(cap, base * factor**k) * (1 + jitter * u)   with u in [-1, 1)

    where ``u`` is a deterministic function of ``(key, k)``.

    ``max_retries`` bounds how many *retries* follow the initial attempt;
    ``None`` retries forever (the seed's behaviour).  A policy with
    ``factor=1`` and ``jitter=0`` is exactly a fixed delay, so the legacy
    ``retry_delay`` parameters are degenerate policies (see
    :meth:`fixed`).
    """

    base: float = 6.0
    factor: float = 2.0
    cap: float = 80.0
    jitter: float = 0.25
    max_retries: Optional[int] = 8

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError("base delay must be positive")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    @classmethod
    def fixed(cls, delay: float) -> "BackoffPolicy":
        """The degenerate policy equal to the seed's fixed retry delay."""
        return cls(
            base=delay, factor=1.0, cap=delay, jitter=0.0, max_retries=None
        )

    def delay(self, attempt: int, key: Hashable = None) -> float:
        """The timeout to arm before attempt ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * self.factor ** attempt)
        if self.jitter:
            u = 2.0 * _unit_interval(key, attempt) - 1.0
            raw *= 1.0 + self.jitter * u
        return raw

    def exhausted(self, retries: int) -> bool:
        """True once ``retries`` retries have already been spent."""
        return self.max_retries is not None and retries >= self.max_retries
