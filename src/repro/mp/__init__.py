"""Message-passing substrate and the Section 2.1 algorithms.

A deterministic discrete-event simulator (:mod:`repro.mp.sim`) hosts the
Quorum phase (:mod:`repro.mp.quorum`), full single-decree Paxos
(:mod:`repro.mp.paxos`), the Backup wrapper (:mod:`repro.mp.backup`) and
the composed speculative consensus deployments
(:mod:`repro.mp.composed`).
"""

from .backoff import BackoffPolicy
from .backup import BackupClient
from .composed import (
    ClientOutcome,
    ComposedConsensus,
    PaxosOnly,
    QuorumOnly,
)
from .multiphase import ThreePhaseConsensus, ThreePhaseOutcome
from .paxos import PaxosAcceptor, PaxosClient, PaxosCoordinator
from .quorum import QuorumClient, QuorumServer
from .sim import Network, NetworkStats, Process, Simulator, Timer

__all__ = [
    "BackoffPolicy",
    "BackupClient",
    "ClientOutcome",
    "ComposedConsensus",
    "Network",
    "NetworkStats",
    "PaxosAcceptor",
    "PaxosClient",
    "PaxosCoordinator",
    "PaxosOnly",
    "Process",
    "QuorumClient",
    "QuorumOnly",
    "QuorumServer",
    "Simulator",
    "ThreePhaseConsensus",
    "ThreePhaseOutcome",
    "Timer",
]
