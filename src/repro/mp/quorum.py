"""The Quorum speculation phase (Section 2.1 of the paper).

Quorum decides in **two message delays** when the execution is fault-free
and contention-free, and otherwise switches to the Backup phase.  Quoting
the paper's protocol:

* Upon ``propose(v)``, a client broadcasts its proposal to all server
  processes, stores ``v`` in ``proposal_c`` and starts a local timer.
* A server receiving a proposal answers with an ``accept`` message
  carrying the *first* proposal it ever received (its own acceptance is
  sticky).
* A client that receives two *different* accept messages switches to
  Backup with ``proposal_c``.
* A client that receives the *same* ``accept(v)`` from **all** servers
  decides ``v``.
* When the timer expires the client switches with any accepted value it
  has seen (waiting for at least one accept message if it has none yet).

Quorum is wait-free: a correct client decides or switches at the latest
when its timer expires (plus at most one message delay).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Sequence

from .sim import Process, Timer


class QuorumServer(Process):
    """Server role: accept the first proposal seen, answer consistently.

    The sticky acceptance is durable: a server that crashes and recovers
    still answers with the first proposal it ever accepted.  Quorum's
    safety argument (a decision needs identical accepts from *all*
    servers) assumes exactly this — a server that forgot its acceptance
    could re-accept a different value and let two clients decide
    differently.
    """

    def __init__(self, pid: Hashable) -> None:
        super().__init__(pid)
        self.accepted: Optional[Hashable] = None

    def durable_state(self) -> Optional[Hashable]:
        """The sticky acceptance, as written to stable storage."""
        return self.accepted

    def on_recover(self, durable) -> None:
        """Restore the sticky acceptance after a restart."""
        self.accepted = durable

    def on_message(self, src: Hashable, message: Any) -> None:
        kind = message[0]
        if kind == "q-propose":
            _, value = message
            if self.accepted is None:
                self.accepted = value
            self.send(src, ("q-accept", self.accepted))


class QuorumClient(Process):
    """Client role of the Quorum phase.

    Outcomes are reported through callbacks: ``on_decide(value)`` when all
    servers answered with the same value, ``on_switch(switch_value)`` when
    the client transfers its pending invocation to the Backup phase.
    Exactly one of the two fires per proposal.
    """

    def __init__(
        self,
        pid: Hashable,
        servers: Sequence[Hashable],
        on_decide: Callable[[Hashable], None],
        on_switch: Callable[[Hashable], None],
        timeout: float = 6.0,
    ) -> None:
        super().__init__(pid)
        self.servers = tuple(servers)
        self.on_decide = on_decide
        self.on_switch = on_switch
        self.timeout = timeout
        self.proposal: Optional[Hashable] = None
        self.accepts: Dict[Hashable, Hashable] = {}
        self.done = False
        self.timer: Optional[Timer] = None
        self.timer_expired = False

    def propose(self, value: Hashable) -> None:
        """Start the phase: broadcast the proposal and arm the timer."""
        if self.proposal is not None:
            raise RuntimeError("QuorumClient handles a single proposal")
        self.proposal = value
        self.broadcast(self.servers, ("q-propose", value))
        self.timer = self.set_timer(self.timeout, self._on_timeout)

    def _finish(self, decide: Optional[Hashable], switch: Optional[Hashable]) -> None:
        if self.done:
            return
        self.done = True
        if self.timer is not None:
            self.timer.cancel()
        if decide is not None:
            self.on_decide(decide)
        else:
            self.on_switch(switch)

    def on_message(self, src: Hashable, message: Any) -> None:
        if self.done or message[0] != "q-accept":
            return
        _, value = message
        self.accepts[src] = value
        seen = set(self.accepts.values())
        if self.timer_expired:
            # The timer fired while no accept message had arrived; the
            # paper has the client wait for at least one accept and switch
            # with its value.
            self._finish(None, value)
            return
        if len(seen) > 1:
            # Two different accept messages: contention — switch with the
            # client's own proposal.
            self._finish(None, self.proposal)
            return
        if len(self.accepts) == len(self.servers):
            # Identical accepts from all servers: decide.
            self._finish(sorted(seen)[0] if len(seen) == 1 else None, None)

    def _on_timeout(self) -> None:
        if self.done:
            return
        if self.accepts:
            # Select one accepted value (they are all candidates the
            # Backup phase may safely adopt).
            value = next(iter(self.accepts.values()))
            self._finish(None, value)
        else:
            # No accept has arrived.  The paper's client waits for at
            # least one — switching with a value it has not seen
            # accepted could contradict a unanimous Quorum decision at
            # this instance — but the waiting rule assumes quasi-
            # reliable channels.  On a lossy transport the proposal
            # itself may be gone, and no server will ever answer a
            # message it never received: re-broadcast the proposal
            # (retransmission supplies the reliable-channel assumption)
            # and keep the timer armed.  The next q-accept to arrive
            # completes the switch.
            self.timer_expired = True
            self.broadcast(self.servers, ("q-propose", self.proposal))
            self.timer = self.set_timer(self.timeout, self._on_timeout)
