"""Three speculation phases composed: SubQuorum → Quorum → Backup.

The paper's framework scales to any number of phases: "a speculative
system may choose between many different options, or speculation phases,
in order to closely match a changing common case", and adding a phase
must not require touching the existing ones.  This module demonstrates
exactly that: a *third* phase is added in front of Quorum+Backup with
zero changes to either.

**SubQuorum** is the Quorum algorithm run over a fixed 2-server subset:
same code (:class:`~repro.mp.quorum.QuorumClient` /
:class:`~repro.mp.quorum.QuorumServer`), a quarter of the fast-path
messages of a 4-server Quorum.  Its safety argument is Quorum's own
(decide on identical accepts from *all* sub-servers; on timeout, switch
with an accepted value, waiting for at least one accept), so I1-I3 — and
hence speculative linearizability — hold unchanged.  When the subset
disagrees, times out, or a sub-server crashes (one may), clients switch
into the full Quorum phase, whose clients treat the incoming switch value
as their proposal; Quorum in turn switches into Backup (Paxos) as before.

The composed object therefore spans phases ``(1, 4)``:

* phase 1 — SubQuorum on servers {0, 1}: 2 message delays, 4 messages;
* phase 2 — Quorum on all servers: 2 message delays, 2n messages;
* phase 3 — Backup (coordinated Paxos): 3 message delays, crash-majority
  tolerant.

Each phase boundary records a single switch action (tags 2 and 3), so the
trace is directly checkable: SLin(1,2), SLin(2,3), SLin(3,4), the
pairwise composition theorem, and Theorem 2's projection.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from ..core.adt import decide, propose
from ..core.recording import TraceRecorder
from ..core.traces import Trace
from .backoff import BackoffPolicy
from .backup import BackupClient
from .paxos import PaxosAcceptor, PaxosCoordinator
from .quorum import QuorumClient, QuorumServer
from .sim import Network, Simulator


class ThreePhaseOutcome:
    """Per-proposal record for the three-phase deployment."""

    def __init__(self, client: Hashable, value: Hashable, start: float):
        self.client = client
        self.value = value
        self.start = start
        self.decided_value: Optional[Hashable] = None
        self.decide_time: Optional[float] = None
        self.decided_phase: Optional[int] = None
        self.switch_values: List[Hashable] = []
        self.gave_up = False
        self.give_up_time: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        """Virtual-time latency (message delays on a unit network)."""
        if self.decide_time is None:
            return None
        return self.decide_time - self.start

    @property
    def path(self) -> str:
        """'phase1' | 'phase2' | 'phase3' | 'gave_up' | 'none'."""
        if self.decided_phase is None:
            return "gave_up" if self.gave_up else "none"
        return f"phase{self.decided_phase}"


class ThreePhaseConsensus:
    """SubQuorum → Quorum → Backup over one simulated cluster.

    ``sub_servers`` selects how many servers host the SubQuorum phase
    (default 2); all ``n_servers`` host the full Quorum and the Paxos
    roles.  Each phase keeps its own sticky server state (separate
    process ids), exactly as if the phases had been deployed
    independently — the point of intra-object composition.
    """

    def __init__(
        self,
        n_servers: int = 4,
        sub_servers: int = 2,
        seed: int = 0,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        sub_timeout: float = 5.0,
        quorum_timeout: float = 12.0,
        expected_clients: int = 8,
        duplicate_rate: float = 0.0,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        if not 1 <= sub_servers <= n_servers:
            raise ValueError("sub_servers must be within the cluster")
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim,
            delay=delay,
            loss_rate=loss_rate,
            duplicate_rate=duplicate_rate,
        )
        self.n_servers = n_servers
        self.sub_servers = sub_servers
        self.sub_timeout = sub_timeout
        self.quorum_timeout = quorum_timeout
        self.backoff = backoff
        self.recorder = TraceRecorder(phase_bounds=(1, 4))
        self.outcomes: Dict[Hashable, ThreePhaseOutcome] = {}

        for i in range(sub_servers):
            self.network.register(QuorumServer(("sq", i)))
        for i in range(n_servers):
            self.network.register(QuorumServer(("qs", i)))
            self.network.register(PaxosAcceptor(("acc", i)))
            self.network.register(
                PaxosCoordinator(
                    ("coord", i),
                    rank=i,
                    n_coordinators=n_servers,
                    acceptors=[("acc", j) for j in range(n_servers)],
                    pre_prepare=(i == 0),
                )
            )
        learners = [("bcli", c) for c in range(expected_clients)] + [
            ("coord", i) for i in range(n_servers)
        ]
        for i in range(n_servers):
            self.network.processes[("acc", i)].register_learners(learners)
        self._count = 0
        self.expected_clients = expected_clients

    def server_pids(self, index: int) -> List[Hashable]:
        """The pids of every role hosted by physical server ``index``."""
        pids = [("qs", index), ("acc", index), ("coord", index)]
        if index < self.sub_servers:
            pids.append(("sq", index))
        return pids

    def crash_server(self, index: int, at: float) -> None:
        """Crash every role hosted by physical server ``index``."""
        for pid in self.server_pids(index):
            self.network.crash_at(pid, at)

    def recover_server(self, index: int, at: float) -> None:
        """Restart every role of server ``index`` with durable state."""
        for pid in self.server_pids(index):
            self.network.recover_at(pid, at)

    def propose(
        self, client: Hashable, value: Hashable, at: float = 0.0
    ) -> ThreePhaseOutcome:
        """Schedule ``client`` to propose ``value`` at virtual time ``at``."""
        index = self._count
        self._count += 1
        if index >= self.expected_clients:
            raise ValueError("raise expected_clients for more proposals")
        outcome = ThreePhaseOutcome(client, value, at)
        self.outcomes[client] = outcome
        input = propose(value)

        def decided(phase: int):
            def handler(decision: Hashable) -> None:
                outcome.decided_value = decision
                outcome.decide_time = self.sim.now
                outcome.decided_phase = phase
                self.recorder.respond(client, phase, input, decide(decision))

            return handler

        def phase_timeout(default: float, key: Hashable, attempt: int) -> float:
            if self.backoff is None:
                return default
            return self.backoff.delay(attempt, key=key)

        def switch_to_quorum(switch_value: Hashable) -> None:
            outcome.switch_values.append(switch_value)
            self.recorder.switch(client, 2, input, switch_value)
            quorum = QuorumClient(
                ("qcli", index),
                servers=[("qs", i) for i in range(self.n_servers)],
                on_decide=decided(2),
                on_switch=switch_to_backup,
                timeout=phase_timeout(
                    self.quorum_timeout, ("qcli", index), 1
                ),
            )
            self.network.register(quorum)
            # The second phase treats the incoming switch value as its
            # proposal (the paper's rule for Backup, applied uniformly).
            quorum.propose(switch_value)

        def switch_to_backup(switch_value: Hashable) -> None:
            outcome.switch_values.append(switch_value)
            self.recorder.switch(client, 3, input, switch_value)
            backup = BackupClient(
                ("bcli", index),
                coordinators=[("coord", i) for i in range(self.n_servers)],
                n_acceptors=self.n_servers,
                on_decide=decided(3),
                backoff=self.backoff,
                on_give_up=give_up,
            )
            self.network.register(backup)
            backup.switch_to_backup(switch_value)

        def give_up() -> None:
            outcome.gave_up = True
            outcome.give_up_time = self.sim.now

        def start() -> None:
            self.recorder.invoke(client, 1, input)
            sub = QuorumClient(
                ("sqcli", index),
                servers=[("sq", i) for i in range(self.sub_servers)],
                on_decide=decided(1),
                on_switch=switch_to_quorum,
                timeout=phase_timeout(self.sub_timeout, ("sqcli", index), 0),
            )
            self.network.register(sub)
            sub.propose(value)

        self.sim.schedule(at, start)
        return outcome

    def run(self, until: Optional[float] = None, max_events: int = 300000) -> None:
        """Drive the simulation to quiescence (or the horizon)."""
        self.sim.run(until=until, max_events=max_events)

    def trace(self) -> Trace:
        """The recorded (1,4) interface trace."""
        return self.recorder.trace()

    def phase_trace(self, m: int, n: int) -> Trace:
        """Projection onto one phase's signature."""
        from ..core.actions import sig_phase

        return self.trace().project(sig_phase(m, n).contains)
