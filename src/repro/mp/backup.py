"""The Backup speculation phase: Paxos behind the switch interface (§2.1).

"The Backup phase is Lamport's Paxos algorithm where clients have the role
of proposers and learners, while servers have the role of acceptors.
Backup treats the switch calls from Quorum as regular proposals."

:class:`BackupClient` is the thin wrapper that turns a
``switch-to-backup(sv)`` call into a Paxos proposal of ``sv`` and reports
the Paxos decision as the phase's response — the "trivial level of
indirection" the paper adds to make Paxos a speculation phase.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional, Sequence

from .backoff import BackoffPolicy
from .paxos import PaxosClient


class BackupClient(PaxosClient):
    """Client-side of the Backup phase.

    ``switch_to_backup(switch_value)`` proposes the switch value through
    Paxos; the inherited learner logic fires ``on_decide`` with the common
    decision.  The pending invocation travels with the caller (the
    composed runtime keeps it and emits the response action when the
    decision arrives).

    Retry pacing and the give-up budget come from the inherited
    :class:`~repro.mp.backoff.BackoffPolicy` machinery; when the budget
    runs out ``on_give_up`` lets the composed runtime surface a
    ``gave_up`` outcome instead of leaving the invocation silently
    pending forever.
    """

    def __init__(
        self,
        pid: Hashable,
        coordinators: Sequence[Hashable],
        n_acceptors: int,
        on_decide: Callable[[Hashable], None],
        retry_delay: float = 10.0,
        backoff: Optional[BackoffPolicy] = None,
        on_give_up: Optional[Callable[[], None]] = None,
    ) -> None:
        super().__init__(
            pid,
            coordinators,
            n_acceptors,
            on_decide,
            retry_delay,
            backoff=backoff,
            on_give_up=on_give_up,
        )

    def switch_to_backup(self, switch_value: Hashable) -> None:
        """Enter the Backup phase with ``switch_value`` as the proposal."""
        self.submit(switch_value)
