"""Discrete-event simulator for asynchronous message-passing systems.

The substrate beneath the Section 2.1 algorithms.  The paper's system
model is a set of crash-prone processes exchanging messages over an
asynchronous network; the theory quantifies over all schedules, and the
paper's quantitative claims are in *message delays*.  This simulator makes
both measurable:

* virtual time with a deterministic, seeded event queue — identical seeds
  reproduce identical executions;
* unit message delay by default, so elapsed virtual time equals the
  message-delay count the paper reasons with (a random-delay model is
  available for robustness experiments);
* fault injection: message loss, message duplication, process crashes at
  scheduled times.

Nothing here knows about consensus: processes are callback objects wired
through a :class:`Network`.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """A deterministic discrete-event scheduler with virtual time."""

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: List[_Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns the event, whose ``cancelled`` flag may be set to revoke
        it (used by timers).
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = _Event(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events in timestamp order.

        Stops when the queue drains, when virtual time would exceed
        ``until``, or after ``max_events`` callbacks.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            event = self._queue[0]
            if until is not None and event.time > until:
                return
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1

    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)


class Timer:
    """A cancellable one-shot timer bound to a simulator."""

    def __init__(self, sim: Simulator, delay: float, callback: Callable[[], None]):
        self._event = sim.schedule(delay, self._fire)
        self._callback = callback
        self.fired = False
        self.cancelled = False

    def _fire(self) -> None:
        if not self.cancelled:
            self.fired = True
            self._callback()

    def cancel(self) -> None:
        """Revoke the timer; the callback will not run."""
        self.cancelled = True
        self._event.cancelled = True


class Process:
    """Base class for simulated processes.

    Subclasses override :meth:`on_message`.  A crashed process silently
    drops incoming messages and stops sending; crashes are injected via
    :meth:`crash` or scheduled through :meth:`Network.crash_at`.
    """

    def __init__(self, pid: Hashable) -> None:
        self.pid = pid
        self.crashed = False
        self.network: Optional["Network"] = None

    def attach(self, network: "Network") -> None:
        """Called by the network when the process is registered."""
        self.network = network

    @property
    def sim(self) -> Simulator:
        """The simulator driving this process's network."""
        return self.network.sim

    def send(self, dst: Hashable, message: Any) -> None:
        """Send a message (dropped if this process has crashed)."""
        if not self.crashed:
            self.network.send(self.pid, dst, message)

    def broadcast(self, dsts, message: Any) -> None:
        """Send the same message to several destinations."""
        for dst in dsts:
            self.send(dst, message)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Start a timer that fires unless the process crashes first."""

        def guarded() -> None:
            if not self.crashed:
                callback()

        return Timer(self.sim, delay, guarded)

    def crash(self) -> None:
        """Crash-stop: the process neither sends nor receives afterwards."""
        self.crashed = True

    def on_message(self, src: Hashable, message: Any) -> None:
        """Handle a delivered message.  Override in subclasses."""
        raise NotImplementedError


@dataclass
class NetworkStats:
    """Counters for benchmark reporting."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    duplicated: int = 0
    dropped_crashed: int = 0
    partitioned: int = 0


@dataclass
class _Partition:
    """A temporary cut between two process groups."""

    group_a: frozenset
    group_b: frozenset
    start: float
    end: float

    def blocks(self, src, dst, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


class Network:
    """The asynchronous network connecting processes.

    ``delay`` is either a constant (default 1.0 — one message delay) or a
    callable ``(rng) -> float``.  ``loss_rate`` drops messages i.i.d.;
    ``duplicate_rate`` re-delivers a message a second time after an
    independent delay, modelling at-least-once channels (the paper's new
    linearizability definition explicitly tolerates repeated events).
    """

    def __init__(
        self,
        sim: Simulator,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ) -> None:
        self.sim = sim
        self.delay = delay
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        self.processes: Dict[Hashable, Process] = {}
        self.stats = NetworkStats()
        self._partitions: List[_Partition] = []

    def register(self, process: Process) -> Process:
        """Add a process to the network."""
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        process.attach(self)
        return process

    def _sample_delay(self) -> float:
        if callable(self.delay):
            return self.delay(self.sim.rng)
        return float(self.delay)

    def partition(
        self,
        group_a,
        group_b,
        start: float,
        end: float,
    ) -> None:
        """Cut all links between two process groups during [start, end).

        Messages *sent* while the cut is active are dropped in both
        directions (messages already in flight when the cut begins still
        arrive — a partition severs links, it does not destroy packets).
        The network heals automatically at ``end``.
        """
        if end <= start:
            raise ValueError("partition must end after it starts")
        self._partitions.append(
            _Partition(frozenset(group_a), frozenset(group_b), start, end)
        )

    def _partitioned(self, src: Hashable, dst: Hashable) -> bool:
        now = self.sim.now
        return any(p.blocks(src, dst, now) for p in self._partitions)

    def send(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Queue a message for asynchronous delivery."""
        self.stats.sent += 1
        if self._partitioned(src, dst):
            self.stats.partitioned += 1
            return
        if self.loss_rate and self.sim.rng.random() < self.loss_rate:
            self.stats.lost += 1
            return
        self._deliver_later(src, dst, message)
        if (
            self.duplicate_rate
            and self.sim.rng.random() < self.duplicate_rate
        ):
            self.stats.duplicated += 1
            self._deliver_later(src, dst, message)

    def _deliver_later(self, src: Hashable, dst: Hashable, message: Any) -> None:
        delay = self._sample_delay()

        def deliver() -> None:
            process = self.processes.get(dst)
            if process is None or process.crashed:
                self.stats.dropped_crashed += 1
                return
            self.stats.delivered += 1
            process.on_message(src, message)

        self.sim.schedule(delay, deliver)

    def crash_at(self, pid: Hashable, time: float) -> None:
        """Schedule a crash of process ``pid`` at absolute virtual time."""
        delay = max(0.0, time - self.sim.now)
        self.sim.schedule(delay, lambda: self.processes[pid].crash())
