"""Discrete-event simulator for asynchronous message-passing systems.

The substrate beneath the Section 2.1 algorithms.  The paper's system
model is a set of crash-prone processes exchanging messages over an
asynchronous network; the theory quantifies over all schedules, and the
paper's quantitative claims are in *message delays*.  This simulator makes
both measurable:

* virtual time with a deterministic, seeded event queue — identical seeds
  reproduce identical executions;
* unit message delay by default, so elapsed virtual time equals the
  message-delay count the paper reasons with (a random-delay model is
  available for robustness experiments);
* fault injection: message loss, message duplication, process crashes at
  scheduled times, crash-*recovery* with a durable-state hook, partitions
  (symmetric or one-way, against explicit groups or membership
  predicates), and time-varying fault windows (loss bursts, duplication
  storms, delay spikes) driven by the nemesis layer in
  :mod:`repro.faults`.

Nothing here knows about consensus: processes are callback objects wired
through a :class:`Network`.

The :class:`Network` is also the reference implementation of the
**substrate port** (:mod:`repro.net.port`): the protocol roles in
:mod:`repro.mp.quorum`, :mod:`repro.mp.paxos` and :mod:`repro.mp.backup`
reach their substrate only through ``send``, ``call_later`` and ``now``,
so the same unchanged algorithm code runs either here (virtual time,
deterministic) or on the asyncio TCP runtime of :mod:`repro.net`
(wall-clock time, real sockets).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """A deterministic discrete-event scheduler with virtual time."""

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self.rng = random.Random(seed)
        self._queue: List[_Event] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Event:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns the event, whose ``cancelled`` flag may be set to revoke
        it (used by timers).
        """
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = _Event(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Process events in timestamp order.

        Stops when the queue drains, when virtual time would exceed
        ``until``, or after ``max_events`` callbacks.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                return
            event = self._queue[0]
            if until is not None and event.time > until:
                return
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1

    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)


class Timer:
    """A cancellable one-shot timer bound to a simulator."""

    def __init__(self, sim: Simulator, delay: float, callback: Callable[[], None]):
        self._event = sim.schedule(delay, self._fire)
        self._callback = callback
        self.fired = False
        self.cancelled = False

    def _fire(self) -> None:
        if not self.cancelled:
            self.fired = True
            self._callback()

    def cancel(self) -> None:
        """Revoke the timer; the callback will not run."""
        self.cancelled = True
        self._event.cancelled = True


class Process:
    """Base class for simulated processes.

    Subclasses override :meth:`on_message`.  A crashed process silently
    drops incoming messages and stops sending; crashes are injected via
    :meth:`crash` or scheduled through :meth:`Network.crash_at`.

    Crash-*recovery* is also modelled: :meth:`recover` restarts a crashed
    process.  A restart loses all volatile state — timers armed before
    the crash never fire after it (each crash bumps an epoch that stale
    timers check) — except what the process explicitly declares durable.
    Subclasses persist state by overriding :meth:`durable_state`
    (snapshotted at crash time, as if written to stable storage on every
    update) and :meth:`on_recover` (reinitialize volatile state, then
    restore the snapshot).  The default process is diskless: it recovers
    with no memory of its past.
    """

    def __init__(self, pid: Hashable) -> None:
        self.pid = pid
        self.crashed = False
        self.network: Optional["Network"] = None
        self._epoch = 0
        self._durable: Any = None

    def attach(self, network: "Network") -> None:
        """Called by the network when the process is registered."""
        self.network = network

    @property
    def sim(self) -> Simulator:
        """The simulator driving this process's network."""
        return self.network.sim

    def send(self, dst: Hashable, message: Any) -> None:
        """Send a message (dropped if this process has crashed)."""
        if not self.crashed:
            self.network.send(self.pid, dst, message)

    def broadcast(self, dsts, message: Any) -> None:
        """Send the same message to several destinations."""
        for dst in dsts:
            self.send(dst, message)

    def set_timer(self, delay: float, callback: Callable[[], None]):
        """Start a timer that fires unless the process crashes first.

        A timer armed before a crash stays dead even if the process later
        recovers: it belonged to the lost volatile state.

        Routed through the substrate port (``network.call_later``) so the
        same protocol code runs on the simulator and on the asyncio TCP
        runtime; the returned handle supports ``cancel()``.  The armed
        delay is scaled by the substrate's ``timer_scale`` for this pid,
        which is how the nemesis injects timer-rate drift (a gray
        failure: this process's tick runs fast or slow relative to the
        cluster) without the protocol code knowing.
        """
        epoch = self._epoch

        def guarded() -> None:
            if not self.crashed and self._epoch == epoch:
                callback()

        scale = self.network.timer_scale(self.pid)
        return self.network.call_later(delay * scale, guarded)

    def local_now(self) -> float:
        """This process's *local* clock reading — substrate time plus
        any clock-skew gray failure currently applied to it."""
        return self.network.local_now(self.pid)

    def call_soon(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` asynchronously-soon on the substrate.

        The port-level replacement for ``self.sim.schedule(0.0, ...)``:
        on the simulator it is exactly that; on the asyncio runtime it is
        ``loop.call_soon``-equivalent scheduling.
        """
        self.network.call_later(0.0, callback)

    def crash(self) -> None:
        """Crash: the process neither sends nor receives until recovered.

        The durable snapshot is taken here — equivalently, the process
        wrote it to stable storage on every update and this is what
        survives on disk.
        """
        if self.crashed:
            return
        self.crashed = True
        self._epoch += 1
        self._durable = self.durable_state()

    def recover(self) -> None:
        """Restart a crashed process with only its durable state."""
        if not self.crashed:
            return
        self.crashed = False
        self.on_recover(self._durable)
        self._durable = None

    def durable_state(self) -> Any:
        """Snapshot persisted across a crash-recover cycle.

        Default: ``None`` — the process is diskless and recovers blank.
        """
        return None

    def on_recover(self, durable: Any) -> None:
        """Reinitialize after a restart; ``durable`` is the snapshot
        taken at crash time (``None`` for diskless processes)."""

    def on_message(self, src: Hashable, message: Any) -> None:
        """Handle a delivered message.  Override in subclasses."""
        raise NotImplementedError


@dataclass
class LinkStats:
    """Per-link (src → dst) counters: one row of the link matrix."""

    sent: int = 0
    lost: int = 0
    duplicated: int = 0
    partitioned: int = 0

    @property
    def faulty(self) -> bool:
        """True iff this link saw any fault (loss, duplication, cut)."""
        return bool(self.lost or self.duplicated or self.partitioned)


@dataclass
class NetworkStats:
    """Counters for benchmark reporting.

    Aggregate totals plus a per-link breakdown: ``links`` maps each
    ``(src, dst)`` pid pair that ever sent a message to its
    :class:`LinkStats`, so a campaign report can name the links a fault
    actually hit rather than only the totals.
    """

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    duplicated: int = 0
    dropped_crashed: int = 0
    partitioned: int = 0
    links: Dict[Tuple[Hashable, Hashable], LinkStats] = field(
        default_factory=dict
    )

    def link(self, src: Hashable, dst: Hashable) -> LinkStats:
        """The (lazily created) counters of the ``src → dst`` link."""
        key = (src, dst)
        stats = self.links.get(key)
        if stats is None:
            stats = self.links[key] = LinkStats()
        return stats

    def faulty_links(self):
        """``((src, dst), LinkStats)`` pairs that saw faults, worst first.

        Deterministically ordered: by descending total fault count, then
        by the repr of the link key — so report lines are reproducible.
        """
        hit = [(k, s) for k, s in self.links.items() if s.faulty]
        hit.sort(
            key=lambda kv: (
                -(kv[1].lost + kv[1].duplicated + kv[1].partitioned),
                repr(kv[0]),
            )
        )
        return hit


@dataclass
class _Partition:
    """A temporary cut between two process groups.

    Sides are membership predicates so a cut can be defined by process
    *identity* (e.g. "every role of physical server 2, in any SMR slot,
    including ones registered after the cut begins") rather than by a set
    frozen at schedule time.  ``side_b = None`` means "everyone not in
    side a".  ``symmetric = False`` models a one-way link failure: only
    a→b messages are blocked.
    """

    side_a: Callable[[Hashable], bool]
    side_b: Optional[Callable[[Hashable], bool]]
    start: float
    end: float
    symmetric: bool = True

    def _in_a(self, pid: Hashable) -> bool:
        return self.side_a(pid)

    def _in_b(self, pid: Hashable) -> bool:
        if self.side_b is None:
            return not self.side_a(pid)
        return self.side_b(pid)

    def blocks(self, src, dst, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        if self._in_a(src) and self._in_b(dst):
            return True
        return self.symmetric and self._in_b(src) and self._in_a(dst)


@dataclass
class _GrayWindow:
    """A time-bounded per-process gray-failure attribute.

    One record shape serves all three gray failures — a slow-node
    factor, a timer-drift rate, or a clock-skew offset — because each
    is just "``value`` applies to matching pids during [start, end)".
    Like :class:`_Partition`, membership is a predicate evaluated
    lazily, so a window covers roles registered after it was scheduled
    (every SMR slot of a physical server, for instance).
    """

    member: Callable[[Hashable], bool]
    start: float
    end: float
    value: float

    def applies(self, pid: Hashable, now: float) -> bool:
        return self.start <= now < self.end and self.member(pid)


class Network:
    """The asynchronous network connecting processes.

    ``delay`` is either a constant (default 1.0 — one message delay) or a
    callable ``(rng) -> float``.  ``loss_rate`` drops messages i.i.d.;
    ``duplicate_rate`` re-delivers a message a second time after an
    independent delay, modelling at-least-once channels (the paper's new
    linearizability definition explicitly tolerates repeated events).
    """

    def __init__(
        self,
        sim: Simulator,
        delay: Any = 1.0,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ) -> None:
        self.sim = sim
        self.delay = delay
        self.loss_rate = loss_rate
        self.duplicate_rate = duplicate_rate
        # Time-varying fault windows (nemesis layer): bursts *add* to the
        # baseline rates so overlapping windows compose; delay spikes
        # *multiply* the sampled delay.
        self.extra_loss = 0.0
        self.extra_duplicate = 0.0
        self.delay_scale = 1.0
        self.processes: Dict[Hashable, Process] = {}
        self.stats = NetworkStats()
        self._partitions: List[_Partition] = []
        # Gray-failure windows (nemesis layer), evaluated lazily per
        # event like partitions: slow-node delay factors, timer-rate
        # drifts, and clock-skew offsets, each scoped to a pid group.
        self._slow: List[_GrayWindow] = []
        self._drifts: List[_GrayWindow] = []
        self._skews: List[_GrayWindow] = []

    def register(self, process: Process) -> Process:
        """Add a process to the network."""
        if process.pid in self.processes:
            raise ValueError(f"duplicate process id {process.pid!r}")
        self.processes[process.pid] = process
        process.attach(self)
        return process

    # -- substrate port (shared with repro.net.transport.AsyncTransport) --

    @property
    def now(self) -> float:
        """The substrate clock: virtual time here, wall-clock on TCP."""
        return self.sim.now

    def call_later(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` after ``delay`` substrate-time units.

        Returns a cancellable timer handle — the port method behind
        :meth:`Process.set_timer` and :meth:`Process.call_soon`.
        """
        return Timer(self.sim, delay, callback)

    def _sample_delay(self) -> float:
        if callable(self.delay):
            return self.delay(self.sim.rng) * self.delay_scale
        return float(self.delay) * self.delay_scale

    @staticmethod
    def _membership(group) -> Callable[[Hashable], bool]:
        if group is None or callable(group):
            return group
        members = frozenset(group)
        return members.__contains__

    def partition(
        self,
        group_a,
        group_b,
        start: float,
        end: float,
        symmetric: bool = True,
    ) -> None:
        """Cut all links between two process groups during [start, end).

        Messages *sent* while the cut is active are dropped (messages
        already in flight when the cut begins still arrive — a partition
        severs links, it does not destroy packets).  The network heals
        automatically at ``end``.

        Each group is a collection of pids or a membership predicate
        ``pid -> bool``; ``group_b = None`` cuts ``group_a`` off from
        everyone else, including processes registered after the cut is
        scheduled.  With ``symmetric=False`` only group-a→group-b
        messages are blocked (a one-way link failure); group-b can still
        reach group-a.
        """
        if end <= start:
            raise ValueError("partition must end after it starts")
        if group_a is None:
            raise ValueError("group_a must name at least one side of the cut")
        self._partitions.append(
            _Partition(
                self._membership(group_a),
                self._membership(group_b),
                start,
                end,
                symmetric,
            )
        )

    def _partitioned(self, src: Hashable, dst: Hashable) -> bool:
        now = self.sim.now
        return any(p.blocks(src, dst, now) for p in self._partitions)

    # -- gray failures: slow nodes, timer drift, clock skew ------------

    def slow_node(self, group, factor: float, start: float, end: float) -> None:
        """Multiply every message delay touching ``group`` by ``factor``
        during [start, end) — the classic gray failure of one replica
        that is alive, correct, and achingly slow.  Overlapping windows
        compose multiplicatively."""
        if end <= start:
            raise ValueError("slow-node window must end after it starts")
        if factor <= 0:
            raise ValueError("slow-node factor must be positive")
        self._slow.append(
            _GrayWindow(self._membership(group), start, end, factor)
        )

    def timer_drift(self, group, rate: float, start: float, end: float) -> None:
        """Stretch (rate > 1) or compress (rate < 1) the timers of
        ``group`` during [start, end): a drifting local tick makes
        retransmit and election timers fire late or early relative to
        the rest of the cluster."""
        if end <= start:
            raise ValueError("timer-drift window must end after it starts")
        if rate <= 0:
            raise ValueError("timer-drift rate must be positive")
        self._drifts.append(
            _GrayWindow(self._membership(group), start, end, rate)
        )

    def clock_skew(self, group, offset: float, start: float, end: float) -> None:
        """Offset the *local* clock reading of ``group`` by ``offset``
        during [start, end).  Delivery order is untouched — skew lies to
        the process about what time it is (:meth:`local_now`), not to
        the scheduler."""
        if end <= start:
            raise ValueError("clock-skew window must end after it starts")
        self._skews.append(
            _GrayWindow(self._membership(group), start, end, offset)
        )

    def slow_factor(self, pid: Hashable) -> float:
        """The composed slow-node delay factor applying to ``pid`` now."""
        if not self._slow:
            return 1.0
        now = self.sim.now
        factor = 1.0
        for window in self._slow:
            if window.applies(pid, now):
                factor *= window.value
        return factor

    def timer_scale(self, pid: Hashable) -> float:
        """The composed timer-rate drift of ``pid`` now (1.0 = honest).

        Part of the substrate port: :meth:`Process.set_timer` multiplies
        every armed delay by this, on whichever substrate hosts it.
        """
        if not self._drifts:
            return 1.0
        now = self.sim.now
        rate = 1.0
        for window in self._drifts:
            if window.applies(pid, now):
                rate *= window.value
        return rate

    def local_now(self, pid: Hashable) -> float:
        """What ``pid``'s wall clock claims: ``now`` plus active skews."""
        now = self.sim.now
        if not self._skews:
            return now
        skewed = now
        for window in self._skews:
            if window.applies(pid, now):
                skewed += window.value
        return skewed

    @property
    def effective_loss_rate(self) -> float:
        """Baseline loss plus any active burst windows, clamped to 1."""
        return min(1.0, self.loss_rate + self.extra_loss)

    @property
    def effective_duplicate_rate(self) -> float:
        """Baseline duplication plus any active storm windows."""
        return min(1.0, self.duplicate_rate + self.extra_duplicate)

    def send(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Queue a message for asynchronous delivery.

        A send blocked by a cut counts once in ``stats.partitioned`` no
        matter how many scheduled partitions overlap on the same link.
        """
        self.stats.sent += 1
        link = self.stats.link(src, dst)
        link.sent += 1
        if self._partitioned(src, dst):
            self.stats.partitioned += 1
            link.partitioned += 1
            return
        loss = self.effective_loss_rate
        if loss and self.sim.rng.random() < loss:
            self.stats.lost += 1
            link.lost += 1
            return
        self._deliver_later(src, dst, message)
        duplicate = self.effective_duplicate_rate
        if duplicate and self.sim.rng.random() < duplicate:
            self.stats.duplicated += 1
            link.duplicated += 1
            self._deliver_later(src, dst, message)

    def _deliver_later(self, src: Hashable, dst: Hashable, message: Any) -> None:
        delay = self._sample_delay()
        if self._slow:
            # a slow node drags every link it touches: its processing
            # and its NIC are one shared bottleneck, so take the worse
            # of the two endpoints' factors
            delay *= max(self.slow_factor(src), self.slow_factor(dst))

        def deliver() -> None:
            process = self.processes.get(dst)
            if process is None or process.crashed:
                self.stats.dropped_crashed += 1
                return
            self.stats.delivered += 1
            process.on_message(src, message)

        self.sim.schedule(delay, deliver)

    def _registered(self, pid: Hashable, what: str) -> None:
        if pid not in self.processes:
            raise ValueError(
                f"cannot schedule {what} of unregistered process {pid!r}"
            )

    def crash_at(self, pid: Hashable, time: float) -> None:
        """Schedule a crash of process ``pid`` at absolute virtual time.

        ``pid`` must already be registered — a typo fails here, at the
        call site, not later inside an anonymous event callback.
        """
        self._registered(pid, "a crash")
        delay = max(0.0, time - self.sim.now)
        self.sim.schedule(delay, lambda: self.processes[pid].crash())

    def recover_at(self, pid: Hashable, time: float) -> None:
        """Schedule a recovery of process ``pid`` at absolute virtual
        time (a no-op if the process is not crashed when it fires)."""
        self._registered(pid, "a recovery")
        delay = max(0.0, time - self.sim.now)
        self.sim.schedule(delay, lambda: self.processes[pid].recover())
