"""Tests for the Section 6 specification automaton.

Beyond unit-level mechanics (A1-A4), the key cross-validation: every
trace the specification automaton can produce is speculatively
linearizable per the *trace-level* checker over the universal ADT with the
singleton rinit — the two formalizations of the paper agree.
"""

from repro.core.actions import Invocation, Response, Switch
from repro.core.adt import universal_adt
from repro.core.speculative import is_speculatively_linearizable, singleton_rinit
from repro.core.traces import Trace
from repro.ioa import (
    ABORTED,
    ClientEnvironment,
    InitEnvironment,
    PENDING,
    READY,
    SLEEP,
    SpecAutomaton,
    compose_automata,
    executions,
    reachable_states,
)

UNIVERSAL = universal_adt()
SINGLETON = singleton_rinit()


def first_phase():
    return SpecAutomaton(1, 2, ("c1", "c2"))


def later_phase():
    return SpecAutomaton(2, 3, ("c1", "c2"))


class TestInitialStates:
    def test_first_phase_starts_ready(self):
        state = next(iter(first_phase().initial_states()))
        assert state.initialized
        assert set(state.status) == {READY}
        assert state.hist == ()

    def test_later_phase_starts_asleep(self):
        state = next(iter(later_phase().initial_states()))
        assert not state.initialized
        assert set(state.status) == {SLEEP}


class TestInputs:
    def test_invocation_makes_pending(self):
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Invocation("c1", 1, "a"))
        assert state.status[0] == PENDING
        assert state.pending[0] == "a"
        assert state.pending_tag[0] == 1

    def test_invocation_ignored_when_busy(self):
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Invocation("c1", 1, "a"))
        again = auto.input_step(state, Invocation("c1", 1, "b"))
        assert again == state  # input-enabled no-op

    def test_switch_in_records_init_history(self):
        auto = later_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Switch("c1", 2, "a", ("x", "a")))
        assert state.status[0] == PENDING
        assert ("x", "a") in state.init_hists

    def test_first_phase_has_no_init_inputs(self):
        auto = first_phase()
        assert not auto.is_input(Switch("c1", 1, "a", ()))


class TestLocallyControlled:
    def test_a1_initializes_with_lcp(self):
        auto = later_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Switch("c1", 2, "a", ("x", "y")))
        state = auto.input_step(state, Switch("c2", 2, "b", ("x", "z")))
        inits = [
            s
            for action, s in auto.transitions(state)
            if action == ("A1", 2, 3)
        ]
        assert len(inits) == 1
        assert inits[0].hist == ("x",)
        assert inits[0].initialized

    def test_a2_appends_and_responds(self):
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Invocation("c1", 1, "a"))
        responses = [
            (action, s)
            for action, s in auto.transitions(state)
            if isinstance(action, Response)
        ]
        assert len(responses) == 1
        action, successor = responses[0]
        assert action.output == ("a",)
        assert successor.hist == ("a",)
        assert successor.status[0] == READY

    def test_a2_general_form_linearizes_other_pending(self):
        # With two pending clients, A2 may embed the other's input first.
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Invocation("c1", 1, "a"))
        state = auto.input_step(state, Invocation("c2", 1, "b"))
        outputs = {
            action.output
            for action, _ in auto.transitions(state)
            if isinstance(action, Response) and action.client == "c1"
        }
        assert ("a",) in outputs
        assert ("b", "a") in outputs

    def test_a2_blocked_after_abort(self):
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Invocation("c1", 1, "a"))
        aborted = [
            s for a, s in auto.transitions(state) if a == ("A3", 1, 2)
        ][0]
        assert not any(
            isinstance(a, Response) for a, _ in auto.transitions(aborted)
        )

    def test_a3_sets_aborted_once(self):
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        aborted = [
            s for a, s in auto.transitions(state) if a == ("A3", 1, 2)
        ][0]
        assert aborted.aborted
        assert not any(
            a == ("A3", 1, 2) for a, _ in auto.transitions(aborted)
        )

    def test_a4_emits_switch_with_hist_prefix(self):
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Invocation("c1", 1, "a"))
        state = [s for a, s in auto.transitions(state) if a == ("A3", 1, 2)][0]
        switches = [
            (a, s)
            for a, s in auto.transitions(state)
            if isinstance(a, Switch)
        ]
        values = {a.value for a, _ in switches}
        assert () in values  # hist itself
        assert ("a",) in values  # hist + the pending input
        for action, successor in switches:
            assert action.phase == 2
            assert successor.status[0] == ABORTED

    def test_a4_can_carry_aborted_clients_input(self):
        auto = first_phase()
        state = next(iter(auto.initial_states()))
        state = auto.input_step(state, Invocation("c1", 1, "a"))
        state = auto.input_step(state, Invocation("c2", 1, "b"))
        state = [s for a, s in auto.transitions(state) if a == ("A3", 1, 2)][0]
        # Abort c1 first with value ("a",).
        step = [
            (a, s)
            for a, s in auto.transitions(state)
            if isinstance(a, Switch) and a.client == "c1" and a.value == ("a",)
        ]
        _, state = step[0]
        # c2's abort may still mention c1's never-served input.
        values = {
            a.value
            for a, _ in auto.transitions(state)
            if isinstance(a, Switch) and a.client == "c2"
        }
        assert ("a",) in values


class TestTraceCrossValidation:
    """Traces of the automaton satisfy the trace-level definition."""

    def _check_all(self, automaton, env, m, n, depth):
        system = compose_automata(automaton, env)
        checked = 0
        for execution in executions(system, max_depth=depth):
            actions = [
                step.action
                for step in execution.steps
                if isinstance(step.action, (Invocation, Response, Switch))
            ]
            t = Trace(actions)
            assert is_speculatively_linearizable(
                t, m, n, UNIVERSAL, SINGLETON
            ), actions
            checked += 1
        return checked

    def test_first_phase_traces_are_slin(self):
        auto = SpecAutomaton(1, 2, ("c1", "c2"))
        env = ClientEnvironment(("c1", "c2"), ("a", "b"), m=1, budget=1)
        checked = self._check_all(auto, env, 1, 2, depth=5)
        assert checked > 100

    def test_later_phase_traces_are_slin(self):
        auto = SpecAutomaton(2, 3, ("c1", "c2"))
        env = InitEnvironment(
            ("c1", "c2"), m=2, init_histories=[(), ("x",)], input_pool=("a",)
        )
        checked = self._check_all(auto, env, 2, 3, depth=5)
        assert checked > 100


class TestReachability:
    def test_state_space_is_finite_and_modest(self):
        auto = SpecAutomaton(1, 2, ("c1", "c2"))
        env = ClientEnvironment(("c1", "c2"), ("a", "b"), m=1, budget=1)
        system = compose_automata(auto, env)
        states = reachable_states(system)
        assert 10 < len(states) < 5000
