"""Unit and property tests for the sequence vocabulary (paper Section 3)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.sequences import (
    as_tuple,
    chain_sorted,
    comparable_by_prefix,
    concat,
    is_prefix,
    is_prefix_chain,
    is_strict_prefix,
    longest_common_prefix,
    positions,
    project,
    project_onto,
    snoc,
    strictly_chained,
    subsequence_at,
    take,
)

short_lists = st.lists(st.integers(0, 3), max_size=6)


class TestPrefix:
    def test_empty_is_prefix_of_everything(self):
        assert is_prefix((), (1, 2, 3))
        assert is_prefix((), ())

    def test_reflexive(self):
        assert is_prefix((1, 2), (1, 2))

    def test_proper_prefix(self):
        assert is_prefix((1,), (1, 2))
        assert not is_prefix((2,), (1, 2))

    def test_longer_is_not_prefix(self):
        assert not is_prefix((1, 2, 3), (1, 2))

    def test_strict_excludes_equality(self):
        assert not is_strict_prefix((1, 2), (1, 2))
        assert is_strict_prefix((1,), (1, 2))

    def test_strict_on_empty(self):
        assert is_strict_prefix((), (1,))
        assert not is_strict_prefix((), ())

    def test_comparable_by_prefix(self):
        assert comparable_by_prefix((1,), (1, 2))
        assert comparable_by_prefix((1, 2), (1,))
        assert not comparable_by_prefix((1,), (2,))

    @given(short_lists, short_lists)
    def test_prefix_iff_concat(self, a, b):
        assert is_prefix(tuple(a), tuple(a) + tuple(b))

    @given(short_lists, short_lists)
    def test_strict_prefix_implies_prefix(self, a, b):
        if is_strict_prefix(tuple(a), tuple(b)):
            assert is_prefix(tuple(a), tuple(b))
            assert len(a) < len(b)


class TestLongestCommonPrefix:
    def test_empty_family(self):
        assert longest_common_prefix([]) == ()

    def test_singleton(self):
        assert longest_common_prefix([(1, 2)]) == (1, 2)

    def test_two(self):
        assert longest_common_prefix([(1, 2, 3), (1, 2, 4)]) == (1, 2)

    def test_disjoint(self):
        assert longest_common_prefix([(1,), (2,)]) == ()

    def test_one_empty_member(self):
        assert longest_common_prefix([(), (1, 2)]) == ()

    def test_chain(self):
        assert longest_common_prefix([(1,), (1, 2), (1, 2, 3)]) == (1,)

    @given(st.lists(short_lists, min_size=1, max_size=5))
    def test_lcp_is_common_prefix(self, seqs):
        lcp = longest_common_prefix([tuple(s) for s in seqs])
        for s in seqs:
            assert is_prefix(lcp, tuple(s))

    @given(st.lists(short_lists, min_size=1, max_size=5))
    def test_lcp_is_longest(self, seqs):
        tuples = [tuple(s) for s in seqs]
        lcp = longest_common_prefix(tuples)
        extended_candidates = {t[: len(lcp) + 1] for t in tuples}
        # No strictly longer common prefix exists.
        for candidate in extended_candidates:
            if len(candidate) > len(lcp):
                assert not all(is_prefix(candidate, t) for t in tuples)


class TestConcatAndSlicing:
    def test_concat(self):
        assert concat((1,), (2, 3), ()) == (1, 2, 3)

    def test_snoc(self):
        assert snoc((1, 2), 3) == (1, 2, 3)

    def test_take(self):
        assert take((1, 2, 3), 2) == (1, 2)
        assert take((1, 2, 3), 0) == ()
        assert take((1, 2, 3), 99) == (1, 2, 3)
        assert take((1, 2, 3), -1) == ()

    def test_as_tuple_identity_on_tuples(self):
        t = (1, 2)
        assert as_tuple(t) is t

    def test_as_tuple_converts(self):
        assert as_tuple([1, 2]) == (1, 2)


class TestProjection:
    def test_project_by_predicate(self):
        assert project((1, 2, 3, 4), lambda x: x % 2 == 0) == (2, 4)

    def test_project_onto_set(self):
        assert project_onto(("x", "y", "x", "z"), {"x", "z"}) == ("x", "x", "z")

    def test_paper_example(self):
        # proj([x, y, x', z, y', z, y, z, y], {x', y'}) = [x', y']
        trace = ("x", "y", "x'", "z", "y'", "z", "y", "z", "y")
        assert project_onto(trace, {"x'", "y'"}) == ("x'", "y'")

    def test_positions(self):
        assert positions((5, 6, 5), lambda x: x == 5) == (0, 2)

    def test_subsequence_at(self):
        assert subsequence_at(("a", "b", "c"), (0, 2)) == ("a", "c")

    @given(short_lists)
    def test_projection_is_subsequence(self, items):
        kept = project(tuple(items), lambda x: x > 1)
        it = iter(items)
        assert all(any(x == k for x in it) for k in kept)


class TestChains:
    def test_chain_sorted_orders(self):
        assert chain_sorted([(1, 2), (1,), (1, 2, 3)]) == (
            (1,),
            (1, 2),
            (1, 2, 3),
        )

    def test_chain_sorted_rejects(self):
        assert chain_sorted([(1,), (2,)]) is None

    def test_is_prefix_chain_empty(self):
        assert is_prefix_chain([])

    def test_is_prefix_chain_allows_duplicates(self):
        assert is_prefix_chain([(1,), (1,)])

    def test_strictly_chained_rejects_duplicates(self):
        assert not strictly_chained([(1,), (1,)])

    def test_strictly_chained_accepts_chain(self):
        assert strictly_chained([(1,), (1, 2)])

    @given(st.lists(short_lists, max_size=5))
    def test_chain_sorted_consistency(self, seqs):
        tuples = [tuple(s) for s in seqs]
        ordered = chain_sorted(tuples)
        if ordered is not None:
            for a, b in zip(ordered, ordered[1:]):
                assert is_prefix(a, b)
        assert (ordered is not None) == is_prefix_chain(tuples)
