"""Every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "mp_consensus.py",
    "sm_consensus.py",
    "smr_kv_store.py",
    "lock_service.py",
    "custom_phase.py",
]

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=ROOT,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate their checks"


def test_unsafe_phase_is_caught():
    """The custom-phase example's point: the framework rejects the
    unsafe timeout rule on the adversarial schedule."""
    result = subprocess.run(
        [sys.executable, os.path.join(ROOT, "examples", "custom_phase.py")],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=ROOT,
    )
    out = result.stdout
    unsafe_section = out.split("UNSAFE rule")[1].split("--- fixed rule")[0]
    assert "SLin(1,2): False" in unsafe_section
    assert "invariants I1-I3: False" in unsafe_section
    fixed_section = out.split("--- fixed rule")[1]
    assert "SLin(1,2): True" in fixed_section
