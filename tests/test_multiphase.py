"""Tests for the three-phase composition SubQuorum → Quorum → Backup.

The paper's scalability story: adding a phase must not disturb the
existing ones, and correctness must follow from per-phase speculative
linearizability via the composition theorem — applied twice.
"""

import pytest

from repro.core.adt import consensus_adt
from repro.core.composition import check_composition_theorem, check_theorem_2
from repro.core.invariants import (
    check_first_phase_invariants,
    check_second_phase_invariants,
)
from repro.core.linearizability import is_linearizable
from repro.core.speculative import consensus_rinit, is_speculatively_linearizable
from repro.core.traces import is_phase_wellformed, strip_phase_tags
from repro.mp import ThreePhaseConsensus

CONS = consensus_adt()


def jitter(rng):
    return rng.uniform(0.5, 1.5)


class TestFastPath:
    def test_solo_client_decides_in_phase1_at_two_delays(self):
        system = ThreePhaseConsensus(seed=0)
        outcome = system.propose("c1", "v1", at=0.0)
        system.run()
        assert outcome.path == "phase1"
        assert outcome.latency == 2.0
        assert outcome.decided_value == "v1"

    def test_subquorum_message_economy(self):
        # SubQuorum's fast path uses 2*sub_servers messages versus
        # 2*n_servers for the full Quorum.  Background traffic: the
        # pre-prepared Paxos coordinator's phase-1 (n prepares + n
        # promises) runs once regardless of the fast path.
        system = ThreePhaseConsensus(n_servers=4, sub_servers=2, seed=0)
        system.propose("c1", "v1", at=0.0)
        system.run()
        background = 2 * system.n_servers
        assert system.network.stats.sent - background == 4

    def test_sequential_clients_agree_in_phase1(self):
        system = ThreePhaseConsensus(seed=0)
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=10.0 * i) for i in range(3)
        ]
        system.run()
        assert all(o.path == "phase1" for o in outcomes)
        assert {o.decided_value for o in outcomes} == {"v0"}


class TestEscalation:
    def test_full_server_crash_escalates_to_backup(self):
        # Crashing a physical server kills its roles in every phase, so
        # both quorum-style phases stall and Backup decides.
        system = ThreePhaseConsensus(seed=0)
        system.crash_server(1, at=0.0)
        outcome = system.propose("c1", "v1", at=1.0)
        system.run()
        assert outcome.path == "phase3"
        assert outcome.decided_value == "v1"
        assert len(outcome.switch_values) == 2

    def test_subphase_only_crash_served_by_quorum(self):
        # Crash only the SubQuorum role of server 1: phase 2 still has
        # its full server set and serves the switched client.
        system = ThreePhaseConsensus(seed=0)
        system.network.crash_at(("sq", 1), 0.0)
        outcome = system.propose("c1", "v1", at=1.0)
        system.run()
        assert outcome.path == "phase2"
        assert outcome.decided_value == "v1"

    @pytest.mark.parametrize("seed", range(6))
    def test_agreement_under_contention(self, seed):
        system = ThreePhaseConsensus(seed=seed, delay=jitter)
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(4)
        ]
        system.run()
        decisions = {o.decided_value for o in outcomes}
        assert len(decisions) == 1
        assert decisions.pop() in {f"v{i}" for i in range(4)}


class TestTraceTheory:
    def _run(self, seed, crash=False):
        system = ThreePhaseConsensus(seed=seed, delay=jitter)
        if crash:
            system.network.crash_at(("sq", 0), 0.5)
        values = [f"v{i}" for i in range(3)]
        for i, v in enumerate(values):
            system.propose(f"c{i}", v, at=0.3 * i)
        system.run()
        return system, consensus_rinit(values, max_extra=1)

    @pytest.mark.parametrize("seed", range(4))
    def test_wellformed_and_linearizable(self, seed):
        system, _ = self._run(seed)
        trace = system.trace()
        assert is_phase_wellformed(trace, 1, 4)
        assert is_linearizable(strip_phase_tags(trace), CONS)

    @pytest.mark.parametrize("seed", range(3))
    def test_each_phase_speculatively_linearizable(self, seed):
        system, rinit = self._run(seed, crash=True)
        assert is_speculatively_linearizable(
            system.phase_trace(1, 2), 1, 2, CONS, rinit
        )
        assert is_speculatively_linearizable(
            system.phase_trace(2, 3), 2, 3, CONS, rinit
        )
        assert is_speculatively_linearizable(
            system.phase_trace(3, 4), 3, 4, CONS, rinit
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_composition_theorem_both_splits(self, seed):
        system, rinit = self._run(seed, crash=True)
        trace = system.trace()
        # Split (1,2) || (2,4): the tail pair is itself a composition.
        ok, why = check_composition_theorem(trace, 1, 2, 4, CONS, rinit)
        assert ok, why
        # Split (1,3) || (3,4).
        ok, why = check_composition_theorem(trace, 1, 3, 4, CONS, rinit)
        assert ok, why

    @pytest.mark.parametrize("seed", range(3))
    def test_theorem_2_projection(self, seed):
        system, rinit = self._run(seed, crash=True)
        ok, why = check_theorem_2(system.trace(), 4, CONS, rinit)
        assert ok, why

    def test_invariants_per_phase(self):
        system, _ = self._run(1, crash=True)
        for report in check_first_phase_invariants(
            system.phase_trace(1, 2), 2
        ):
            assert report.ok, report
        # Quorum as a middle phase: deciders agree and echo switch values
        # (I4/I5 with tag-2 inits), and its own aborts behave (I1 with
        # tag-3 aborts).
        middle = system.phase_trace(2, 3)
        for report in check_second_phase_invariants(middle, 2):
            assert report.ok, report
        for report in check_second_phase_invariants(
            system.phase_trace(3, 4), 3
        ):
            assert report.ok, report
