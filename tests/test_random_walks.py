"""Randomized cross-validation walks over the specification automata.

Complements the exhaustive small scopes: long random executions of the
specification automaton (alone and composed) on *larger* universes, every
recorded trace checked against the trace-level theory.  Hypothesis drives
the schedules, so failures shrink to minimal reproducers.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Invocation, Response, Switch
from repro.core.adt import universal_adt
from repro.core.composition import check_composition_theorem
from repro.core.speculative import is_speculatively_linearizable, singleton_rinit
from repro.core.traces import Trace
from repro.ioa import (
    ClientEnvironment,
    SpecAutomaton,
    compose_automata,
)
from repro.ioa.execution import successors

UNI = universal_adt()
SINGLETON = singleton_rinit()


def random_execution(system, seed, max_steps):
    """One seeded random walk; returns the action trace."""
    rng = random.Random(seed)
    state = next(iter(system.initial_states()))
    actions = []
    for _ in range(max_steps):
        options = list(successors(system, state))
        if not options:
            break
        action, state = rng.choice(options)
        if isinstance(action, (Invocation, Response, Switch)):
            actions.append(action)
    return Trace(actions)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**30), st.integers(3, 14))
def test_first_phase_walks_are_slin(seed, steps):
    auto = SpecAutomaton(1, 2, ("c1", "c2", "c3"))
    env = ClientEnvironment(
        ("c1", "c2", "c3"), ("a", "b", "c"), m=1, budget=2
    )
    system = compose_automata(auto, env)
    trace = random_execution(system, seed, steps)
    assert is_speculatively_linearizable(
        trace, 1, 2, UNI, SINGLETON
    ), trace.actions


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**30), st.integers(3, 12))
def test_composed_walks_satisfy_theorem5(seed, steps):
    clients = ("c1", "c2")
    spec12 = SpecAutomaton(1, 2, clients)
    spec23 = SpecAutomaton(2, 3, clients)
    env = ClientEnvironment(clients, ("a", "b"), m=1, budget=1)
    system = compose_automata(spec12, spec23, env)
    trace = random_execution(system, seed, steps)
    ok, why = check_composition_theorem(trace, 1, 2, 3, UNI, SINGLETON)
    assert ok, (why, trace.actions)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**30))
def test_walk_traces_project_linearizably(seed):
    from repro.core.linearizability import is_linearizable
    from repro.core.traces import strip_phase_tags

    clients = ("c1", "c2")
    spec12 = SpecAutomaton(1, 2, clients)
    spec23 = SpecAutomaton(2, 3, clients)
    env = ClientEnvironment(clients, ("a", "b"), m=1, budget=1)
    system = compose_automata(spec12, spec23, env)
    trace = random_execution(system, seed, 12)
    assert is_linearizable(strip_phase_tags(trace), UNI), trace.actions


class TestMutatedWalksRejected:
    """Mutating a correct walk usually breaks the property — evidence the
    checkers are not vacuously accepting everything."""

    def test_output_corruption_detected(self):
        auto = SpecAutomaton(1, 2, ("c1", "c2"))
        env = ClientEnvironment(("c1", "c2"), ("a", "b"), m=1, budget=1)
        system = compose_automata(auto, env)
        rejected = 0
        tried = 0
        for seed in range(30):
            trace = random_execution(system, seed, 10)
            positions = [
                i
                for i, a in enumerate(trace.actions)
                if isinstance(a, Response)
            ]
            if not positions:
                continue
            i = positions[0]
            action = trace[i]
            mutated = Trace(
                trace.actions[:i]
                + (
                    Response(
                        action.client,
                        action.phase,
                        action.input,
                        ("corrupt",) + tuple(action.output),
                    ),
                )
                + trace.actions[i + 1 :]
            )
            tried += 1
            if not is_speculatively_linearizable(
                mutated, 1, 2, UNI, SINGLETON
            ):
                rejected += 1
        assert tried > 5
        assert rejected == tried  # corrupting a history output always breaks
