"""Speculative linearizability over the universal ADT (Section 6 traces).

The paper's claim of generality — "our work concerns arbitrary abstract
data types, including one-shot ones" — exercised at the trace level with
the *multi-shot* universal ADT and the singleton rinit: switch values are
concrete histories, responses are full histories, and clients keep
invoking after being served.
"""

from repro.core.actions import inv, res, swi
from repro.core.adt import universal_adt
from repro.core.speculative import (
    is_speculatively_linearizable,
    singleton_rinit,
)
from repro.core.traces import Trace

UNI = universal_adt()
SINGLETON = singleton_rinit()


class TestFirstPhase:
    def test_multi_shot_client(self):
        t = Trace(
            [
                inv("c1", 1, "a"),
                res("c1", 1, "a", ("a",)),
                inv("c1", 1, "b"),
                res("c1", 1, "b", ("a", "b")),
            ]
        )
        assert is_speculatively_linearizable(t, 1, 2, UNI, SINGLETON)

    def test_interleaved_clients_grow_one_history(self):
        t = Trace(
            [
                inv("c1", 1, "a"),
                inv("c2", 1, "b"),
                res("c2", 1, "b", ("b",)),
                res("c1", 1, "a", ("b", "a")),
            ]
        )
        assert is_speculatively_linearizable(t, 1, 2, UNI, SINGLETON)

    def test_forked_histories_rejected(self):
        t = Trace(
            [
                inv("c1", 1, "a"),
                inv("c2", 1, "b"),
                res("c2", 1, "b", ("b",)),
                res("c1", 1, "a", ("a",)),  # not an extension of ("b",)
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, UNI, SINGLETON)

    def test_abort_value_extends_every_commit(self):
        t = Trace(
            [
                inv("c1", 1, "a"),
                res("c1", 1, "a", ("a",)),
                inv("c2", 1, "b"),
                swi("c2", 2, "b", ("a", "b")),
            ]
        )
        assert is_speculatively_linearizable(t, 1, 2, UNI, SINGLETON)

    def test_abort_value_forgetting_a_commit_rejected(self):
        t = Trace(
            [
                inv("c1", 1, "a"),
                res("c1", 1, "a", ("a",)),
                inv("c2", 1, "b"),
                swi("c2", 2, "b", ("b",)),  # drops the committed "a"
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, UNI, SINGLETON)

    def test_abort_may_embed_pending_sibling(self):
        t = Trace(
            [
                inv("c1", 1, "a"),  # pending forever
                inv("c2", 1, "b"),
                swi("c2", 2, "b", ("a", "b")),
            ]
        )
        assert is_speculatively_linearizable(t, 1, 2, UNI, SINGLETON)

    def test_abort_value_inventing_inputs_rejected(self):
        t = Trace(
            [
                inv("c2", 1, "b"),
                swi("c2", 2, "b", ("z", "b")),  # "z" was never invoked
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, UNI, SINGLETON)


class TestSecondPhase:
    def test_resumes_from_init_history(self):
        t = Trace(
            [
                swi("c1", 2, "x", ("a",)),
                res("c1", 2, "x", ("a", "x")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)

    def test_response_ignoring_init_rejected(self):
        t = Trace(
            [
                swi("c1", 2, "x", ("a",)),
                res("c1", 2, "x", ("x",)),  # forgets the inherited "a"
            ]
        )
        assert not is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)

    def test_two_inits_resume_from_lcp(self):
        # Different init histories: the adopted prefix is their lcp.
        t = Trace(
            [
                swi("c1", 2, "x", ("a", "b")),
                swi("c2", 2, "y", ("a", "c")),
                res("c1", 2, "x", ("a", "x")),
                res("c2", 2, "y", ("a", "x", "y")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)

    def test_response_below_lcp_rejected(self):
        t = Trace(
            [
                swi("c1", 2, "x", ("a", "b")),
                swi("c2", 2, "y", ("a", "b")),
                res("c1", 2, "x", ("a", "x")),  # lcp is (a, b)
            ]
        )
        assert not is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)

    def test_multi_shot_after_switch(self):
        t = Trace(
            [
                swi("c1", 2, "x", ("a",)),
                res("c1", 2, "x", ("a", "x")),
                inv("c1", 2, "y"),
                res("c1", 2, "y", ("a", "x", "y")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)

    def test_second_phase_abort_chains(self):
        t = Trace(
            [
                swi("c1", 2, "x", ("a",)),
                swi("c2", 2, "y", ("a",)),
                res("c1", 2, "x", ("a", "x")),
                swi("c2", 3, "y", ("a", "x", "y")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)

    def test_second_phase_abort_below_commit_rejected(self):
        t = Trace(
            [
                swi("c1", 2, "x", ("a",)),
                swi("c2", 2, "y", ("a",)),
                res("c1", 2, "x", ("a", "x")),
                swi("c2", 3, "y", ("a", "y")),  # not extending the commit
            ]
        )
        assert not is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)


class TestKnownModellingBoundary:
    """The singleton-rinit budget corner, pinned as expected behaviour.

    When a client's sole invocation is absorbed into the init history it
    itself carried across the boundary, the phase-local budget counts it
    once; an abort value that *repeats* the input (claiming both the
    inherited copy and a fresh one) is accepted phase-locally under the
    additive Definition-25 reading but over-counts globally.  The
    specification automaton never emits such values (A4 extends by
    distinct not-in-hist inputs only), and the algorithms never produce
    them; the checker-level acceptance is recorded here as the boundary
    of the trace-level formalization — see DESIGN.md.
    """

    def test_phase_local_acceptance_of_duplicating_abort(self):
        t = Trace(
            [
                swi("c1", 2, "a", ("a",)),
                swi("c1", 3, "a", ("a", "a")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, UNI, SINGLETON)

    def test_composed_level_rejects_the_same_pattern(self):
        t = Trace(
            [
                inv("c1", 1, "a"),
                swi("c1", 2, "a", ("a",)),
                swi("c1", 3, "a", ("a", "a")),
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 3, UNI, SINGLETON)
