"""Tests for the single-decree Paxos implementation (the Backup engine)."""

from repro.mp.composed import PaxosOnly
from repro.mp.paxos import PaxosAcceptor, PaxosCoordinator
from repro.mp.sim import Network, Process, Simulator


class Collector(Process):
    """Records every message it receives."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, src, message):
        self.received.append((src, message))


class TestAcceptor:
    def _setup(self):
        sim = Simulator()
        net = Network(sim)
        acceptor = net.register(PaxosAcceptor("a"))
        probe = net.register(Collector("p"))
        return sim, net, acceptor, probe

    def test_promise_on_higher_ballot(self):
        sim, net, acceptor, probe = self._setup()
        probe.send("a", ("prepare", 5))
        sim.run()
        assert probe.received == [("a", ("promise", 5, -1, None))]
        assert acceptor.promised == 5

    def test_nack_on_stale_prepare(self):
        sim, net, acceptor, probe = self._setup()
        probe.send("a", ("prepare", 5))
        sim.run()
        probe.send("a", ("prepare", 3))
        sim.run()
        assert probe.received[-1] == ("a", ("nack", 3, 5))

    def test_accept_records_and_announces(self):
        sim, net, acceptor, probe = self._setup()
        acceptor.register_learners(["p"])
        probe.send("a", ("prepare", 5))
        sim.run()
        probe.send("a", ("accept", 5, "v"))
        sim.run()
        assert ("a", ("accepted", 5, "v")) in probe.received
        assert acceptor.accepted_value == "v"
        assert acceptor.accepted_ballot == 5

    def test_accept_rejected_below_promise(self):
        sim, net, acceptor, probe = self._setup()
        acceptor.register_learners(["p"])
        probe.send("a", ("prepare", 5))
        sim.run()
        probe.send("a", ("accept", 4, "v"))
        sim.run()
        assert ("a", ("nack", 4, 5)) in probe.received
        assert acceptor.accepted_value is None

    def test_promise_reports_prior_acceptance(self):
        sim, net, acceptor, probe = self._setup()
        acceptor.register_learners(["p"])
        probe.send("a", ("prepare", 1))
        sim.run()
        probe.send("a", ("accept", 1, "v"))
        sim.run()
        probe.send("a", ("prepare", 7))
        sim.run()
        assert ("a", ("promise", 7, 1, "v")) in probe.received


class TestEndToEnd:
    def test_three_delay_decision(self):
        system = PaxosOnly(n_servers=3, seed=0)
        outcome = system.propose("c1", "v1", at=5.0)
        system.run()
        assert outcome.decided_value == "v1"
        assert outcome.latency == 3.0

    def test_without_preprepare_costs_two_more_delays(self):
        system = PaxosOnly(n_servers=3, seed=0, pre_prepare=False)
        outcome = system.propose("c1", "v1", at=5.0)
        system.run()
        assert outcome.decided_value == "v1"
        assert outcome.latency == 5.0

    def test_agreement_under_concurrency(self):
        for seed in range(8):
            system = PaxosOnly(
                n_servers=3,
                seed=seed,
                delay=lambda rng: rng.uniform(0.5, 1.5),
            )
            outcomes = [
                system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(4)
            ]
            system.run()
            decisions = {o.decided_value for o in outcomes}
            assert len(decisions) == 1, (seed, decisions)
            assert decisions.pop() in {f"v{i}" for i in range(4)}

    def test_validity_decided_value_was_proposed(self):
        system = PaxosOnly(n_servers=5, seed=2)
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=float(i)) for i in range(3)
        ]
        system.run()
        for o in outcomes:
            assert o.decided_value in {"v0", "v1", "v2"}

    def test_minority_acceptor_crash_tolerated(self):
        system = PaxosOnly(n_servers=3, seed=0)
        system.crash_server(2, at=0.0)
        outcome = system.propose("c1", "v1", at=1.0)
        system.run()
        assert outcome.decided_value == "v1"

    def test_coordinator_crash_failover(self):
        system = PaxosOnly(n_servers=3, seed=0)
        system.crash_server(0, at=0.0)  # the pre-prepared coordinator
        outcome = system.propose("c1", "v1", at=1.0)
        system.run()
        assert outcome.decided_value == "v1"

    def test_agreement_with_message_loss(self):
        decided = 0
        for seed in range(8):
            system = PaxosOnly(n_servers=3, seed=seed, loss_rate=0.15)
            outcomes = [
                system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(3)
            ]
            system.run(until=500.0)
            decisions = {
                o.decided_value
                for o in outcomes
                if o.decided_value is not None
            }
            assert len(decisions) <= 1, (seed, decisions)
            decided += len([o for o in outcomes if o.decided_value])
        assert decided > 0

    def test_late_client_learns_existing_decision(self):
        system = PaxosOnly(n_servers=3, seed=0)
        first = system.propose("c1", "v1", at=0.0)
        late = system.propose("c2", "v2", at=50.0)
        system.run()
        assert first.decided_value == "v1"
        assert late.decided_value == "v1"

    def test_two_coordinators_duel_still_agree(self):
        # Force both coordinators to act by crashing nothing but pointing
        # clients at different coordinators via retries under loss.
        for seed in range(5):
            system = PaxosOnly(n_servers=3, seed=seed, loss_rate=0.3)
            outcomes = [
                system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(2)
            ]
            system.run(until=1000.0)
            decisions = {
                o.decided_value
                for o in outcomes
                if o.decided_value is not None
            }
            assert len(decisions) <= 1, (seed, decisions)


class TestSafetyInvariants:
    def test_chosen_value_never_changes(self):
        # Once a majority accepts a ballot/value, later ballots carry the
        # same value (the essence of Paxos safety), observed through the
        # acceptors' final states.
        for seed in range(6):
            system = PaxosOnly(
                n_servers=3,
                seed=seed,
                delay=lambda rng: rng.uniform(0.5, 2.0),
                loss_rate=0.1,
            )
            outcomes = [
                system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(3)
            ]
            system.run(until=500.0)
            decisions = {
                o.decided_value
                for o in outcomes
                if o.decided_value is not None
            }
            if decisions:
                decided = decisions.pop()
                accepted = {
                    a.accepted_value
                    for a in system.acceptors
                    if a.accepted_value is not None and not a.crashed
                }
                # A majority of live acceptors holds the decided value.
                assert decided in accepted


class TestCoordinatorInternals:
    """Driving the coordinator role directly through targeted schedules."""

    def _rig(self, n=3, pre_prepare=False):
        sim = Simulator()
        net = Network(sim)
        acceptors = [net.register(PaxosAcceptor(("a", i))) for i in range(n)]
        coordinator = net.register(
            PaxosCoordinator(
                "coord",
                rank=0,
                n_coordinators=n,
                acceptors=[("a", i) for i in range(n)],
                pre_prepare=pre_prepare,
            )
        )
        probe = net.register(Collector("probe"))
        for acceptor in acceptors:
            acceptor.register_learners(["probe", "coord"])
        return sim, net, acceptors, coordinator, probe

    def test_adopts_highest_accepted_value_from_promises(self):
        sim, net, acceptors, coordinator, probe = self._rig()
        # Acceptor 0 already accepted ("old" value at ballot 0) and
        # acceptor 1 at a higher ballot 3.
        acceptors[0].promised = 0
        acceptors[0].accepted_ballot = 0
        acceptors[0].accepted_value = "old"
        acceptors[1].promised = 3
        acceptors[1].accepted_ballot = 3
        acceptors[1].accepted_value = "newer"
        probe.send("coord", ("request", "mine"))
        sim.run()
        # The coordinator must push "newer", not "mine" or "old".
        assert coordinator.decision == "newer"

    def test_uses_first_request_when_no_prior_acceptance(self):
        sim, net, acceptors, coordinator, probe = self._rig()
        probe.send("coord", ("request", "first"))
        sim.run(until=2.0)
        probe.send("coord", ("request", "second"))
        sim.run()
        assert coordinator.decision == "first"

    def test_answers_late_requests_with_decision(self):
        sim, net, acceptors, coordinator, probe = self._rig()
        probe.send("coord", ("request", "v"))
        sim.run()
        assert coordinator.decision == "v"
        probe.received.clear()
        probe.send("coord", ("request", "late"))
        sim.run()
        assert ("coord", ("decision", "v")) in probe.received

    def test_nack_restarts_with_higher_round(self):
        sim, net, acceptors, coordinator, probe = self._rig()
        # Poison the acceptors with a promise above the coordinator's
        # first ballot (rank 0, round 0 => ballot 0).
        for acceptor in acceptors:
            acceptor.promised = 7
        probe.send("coord", ("request", "v"))
        sim.run()
        # Round adopted beyond the nack's promised ballot: 7//3+1 = 3,
        # ballot = 3*3+0 = 9 > 7, so the value still gets chosen.
        assert coordinator.decision == "v"
        assert coordinator.ballot >= 9

    def test_phase1_preprepare_runs_without_requests(self):
        sim, net, acceptors, coordinator, probe = self._rig(pre_prepare=True)
        sim.run()
        assert coordinator.has_quorum
        assert coordinator.decision is None  # nothing to propose yet

    def test_retry_timer_noop_without_pending_requests(self):
        sim, net, acceptors, coordinator, probe = self._rig(pre_prepare=True)
        sim.run()
        round_before = coordinator.round
        sim.run(until=100.0)
        assert coordinator.round == round_before
