"""Tests for speculative SMR and the replicated KV store (§6 application)."""

import pytest

from repro.core.linearizability import is_linearizable
from repro.smr.kvstore import ReplicatedKVStore
from repro.smr.replica import SpeculativeSMR
from repro.smr.universal import (
    UniversalFrontend,
    kv_delete,
    kv_get,
    kv_put,
    kv_store_adt,
)


def jitter(rng):
    return rng.uniform(0.5, 1.5)


class TestKVAdt:
    def test_put_get_delete_semantics(self):
        adt = kv_store_adt()
        history = (kv_put("k", 1), kv_get("k"))
        assert adt.output(history) == ("value", 1)
        history += (kv_delete("k"), kv_get("k"))
        assert adt.output(history) == ("value", None)

    def test_put_returns_previous(self):
        adt = kv_store_adt()
        assert adt.output((kv_put("k", 1), kv_put("k", 2))) == ("value", 1)

    def test_validation(self):
        adt = kv_store_adt()
        assert adt.is_input(kv_put("k", 1))
        assert adt.is_input(kv_get("k"))
        assert not adt.is_input(("put", "k"))
        assert adt.is_output(("value", 3))

    def test_state_is_canonical(self):
        adt = kv_store_adt()
        s1, _ = adt.run((kv_put("a", 1), kv_put("b", 2)))
        s2, _ = adt.run((kv_put("b", 2), kv_put("a", 1)))
        assert s1 == s2


class TestUniversalFrontend:
    def test_respond_applies_output_function(self):
        frontend = UniversalFrontend(kv_store_adt())
        history = (kv_put("k", 1), kv_get("k"))
        assert frontend.respond(history) == ("value", 1)

    def test_respond_prefix(self):
        frontend = UniversalFrontend(kv_store_adt())
        history = (kv_put("k", 1), kv_put("k", 2), kv_get("k"))
        assert frontend.respond_prefix(history, 1) == ("value", None)


class TestSpeculativeSMR:
    def test_sequential_commands_fast_path(self):
        smr = SpeculativeSMR(n_servers=3, seed=0)
        o1 = smr.submit("c1", "A", at=0.0)
        o2 = smr.submit("c2", "B", at=10.0)
        smr.run()
        assert smr.committed_log() == ["A", "B"]
        assert o1.path == "fast" and o1.latency == 2.0
        assert o2.path == "fast" and o2.latency == 2.0
        assert (o1.slot, o2.slot) == (0, 1)

    @pytest.mark.parametrize("seed", range(6))
    def test_concurrent_commands_all_commit_distinct_slots(self, seed):
        smr = SpeculativeSMR(n_servers=3, seed=seed, delay=jitter)
        outcomes = [
            smr.submit(f"c{i}", f"cmd{i}", at=0.0) for i in range(3)
        ]
        smr.run()
        slots = [o.slot for o in outcomes]
        assert None not in slots
        assert len(set(slots)) == 3
        assert sorted(smr.committed_log()) == sorted(
            o.command for o in outcomes
        )

    def test_log_has_no_gaps(self):
        smr = SpeculativeSMR(n_servers=3, seed=2, delay=jitter)
        for i in range(4):
            smr.submit(f"c{i}", f"cmd{i}", at=float(i) * 0.5)
        smr.run()
        log = smr.committed_log()
        assert len(log) == 4

    def test_crash_tolerated(self):
        smr = SpeculativeSMR(n_servers=3, seed=0)
        smr.crash_server(1, at=0.0)
        outcome = smr.submit("c1", "A", at=1.0)
        smr.run()
        assert outcome.commit_time is not None
        assert outcome.path == "slow"  # quorum needs all servers
        assert smr.committed_log() == ["A"]

    def test_attempts_counted(self):
        smr = SpeculativeSMR(n_servers=3, seed=1, delay=jitter)
        outcomes = [
            smr.submit(f"c{i}", f"cmd{i}", at=0.0) for i in range(2)
        ]
        smr.run()
        assert all(o.attempts >= 1 for o in outcomes)


class TestReplicatedKVStore:
    def test_quickstart_scenario(self):
        kv = ReplicatedKVStore(n_servers=3, seed=1)
        kv.put("alice", "x", 1, at=0.0)
        kv.put("bob", "x", 2, at=10.0)
        kv.get("carol", "x", at=20.0)
        kv.delete("alice", "x", at=30.0)
        kv.get("bob", "x", at=40.0)
        kv.run()
        responses = [r.response for r in kv.results]
        assert responses == [
            ("value", None),
            ("value", 1),
            ("value", 2),
            ("value", 2),
            ("value", None),
        ]
        assert kv.state() == {}

    def test_interface_trace_linearizable(self):
        kv = ReplicatedKVStore(n_servers=3, seed=3, delay=jitter)
        kv.put("a", "x", 1, at=0.0)
        kv.put("b", "x", 2, at=0.0)
        kv.get("c", "x", at=0.0)
        kv.run()
        trace = kv.interface_trace()
        assert is_linearizable(trace, kv_store_adt())

    @pytest.mark.parametrize("seed", range(4))
    def test_concurrent_kv_linearizable(self, seed):
        kv = ReplicatedKVStore(n_servers=3, seed=seed, delay=jitter)
        kv.put("a", "k1", seed, at=0.0)
        kv.get("b", "k1", at=0.0)
        kv.put("c", "k2", 9, at=0.5)
        kv.delete("a", "k1", at=6.0)
        kv.run()
        assert is_linearizable(kv.interface_trace(), kv_store_adt())

    def test_state_reflects_log(self):
        kv = ReplicatedKVStore(n_servers=3, seed=0)
        kv.put("a", "x", 1, at=0.0)
        kv.put("b", "y", 2, at=5.0)
        kv.run()
        assert kv.state() == {"x": 1, "y": 2}

    def test_crash_tolerance(self):
        kv = ReplicatedKVStore(n_servers=3, seed=0)
        kv.smr.crash_server(2, at=0.0)
        kv.put("a", "x", 1, at=1.0)
        kv.get("b", "x", at=15.0)
        kv.run()
        assert [r.response for r in kv.results] == [
            ("value", None),
            ("value", 1),
        ]
