"""The high-throughput data plane (`repro.net.pipeline` and friends).

The :class:`~repro.net.pipeline.SlotPipeline` changes *how fast* ops
commit — windowed in-flight decrees, batch coalescing, split-and-retry
at the frame bound — but must not change *what* commits: every history
it produces, sharded or not, killed-replica or not, has to check out
linearizable, and oversized work has to fail as a typed per-op error
without tearing a connection or poisoning an innocent client.

The simulator-side mirror (:meth:`SpeculativeSMR.submit_pipelined`)
is covered here too, so the two data planes stay behaviourally aligned.
"""

import asyncio

import pytest

from repro.core.fastcheck import check_linearizable
from repro.net.client import (
    HistoryRecorder,
    NetClient,
    RequestTooLarge,
)
from repro.net.cluster import LocalCluster, shard_of
from repro.net.codec import MAX_FRAME
from repro.net.loadgen import run_loadgen
from repro.net.pipeline import (
    PayloadTooLarge,
    PipelineClient,
    SlotPipeline,
)
from repro.smr.replica import SpeculativeSMR
from repro.smr.universal import UniversalFrontend, batch_commands, kv_store_adt

SILENT = lambda line: None  # noqa: E731


# ---------------------------------------------------------------------------
# the simulator-side mirror
# ---------------------------------------------------------------------------


class TestSimPipelined:
    def test_pipelined_commits_all_commands_in_order(self):
        smr = SpeculativeSMR(n_servers=3, seed=7)
        commands = [("put", "k", i) for i in range(20)]
        outcomes = smr.submit_pipelined(
            "c1", commands, at=0.0, window=4, max_batch=4
        )
        smr.run()
        assert all(o.commit_time is not None for o in outcomes)
        # the flattened decided log is exactly the submitted sequence:
        # batches partition the commands, slots preserve their order
        decided = []
        for slot in sorted(smr.log):
            decided.extend(batch_commands(smr.log[slot]))
        assert decided == commands

    def test_pipelined_batches_across_the_window(self):
        smr = SpeculativeSMR(n_servers=3, seed=1)
        commands = [("put", "k", i) for i in range(16)]
        smr.submit_pipelined("c1", commands, window=4, max_batch=8)
        smr.run()
        # 16 commands at <=8 per decree need at least 2 decrees but far
        # fewer than one per command — batching actually engaged
        assert 2 <= len(smr.log) <= 4

    def test_pipelined_under_crash_still_commits(self):
        smr = SpeculativeSMR(n_servers=3, seed=3)
        commands = [("put", "k", i) for i in range(12)]
        outcomes = smr.submit_pipelined("c1", commands, window=4, max_batch=4)
        smr.crash_server(2, at=5.0)
        smr.run()
        assert all(o.commit_time is not None for o in outcomes)


# ---------------------------------------------------------------------------
# SlotPipeline over real sockets
# ---------------------------------------------------------------------------


def _check(recorder):
    return check_linearizable(recorder.trace(), kv_store_adt())


class TestSlotPipeline:
    def test_concurrent_submits_coalesce_into_batches(self):
        """Ops enqueued in one loop tick ride one decree, not eight."""

        async def scenario():
            cluster = LocalCluster(n_servers=3, codec="binary")
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            pipeline = SlotPipeline(
                "main", 3, transport, window=4, max_batch=16,
                quorum_timeout=0.15,
            )
            clients = [
                PipelineClient(f"c{i}", pipeline, recorder, op_timeout=5.0)
                for i in range(8)
            ]
            outs = await asyncio.gather(
                *(c.submit(("put", "k", i)) for i, c in enumerate(clients))
            )
            await cluster.stop()
            return pipeline, recorder, outs

        pipeline, recorder, outs = asyncio.run(scenario())
        # a put answers with the previous cell value
        assert all(out[0] == "value" for out in outs)
        assert pipeline.batched_ops == 8
        # all eight submits land in the same tick's pump: one decree
        # (or two if the loop slices the gather — never one per op)
        assert pipeline.decrees <= 2
        assert _check(recorder).ok

    def test_oversized_batch_splits_and_all_ops_commit(self):
        """A batch over MAX_FRAME is halved and re-tried, never torn."""
        big = "v" * 300_000  # 4 together > 1 MiB, any 2 fit, 1 fits

        async def scenario():
            cluster = LocalCluster(n_servers=3, codec="binary")
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            pipeline = SlotPipeline(
                "main", 3, transport, window=4, max_batch=16,
                quorum_timeout=0.5,
            )
            clients = [
                PipelineClient(f"c{i}", pipeline, recorder, op_timeout=10.0)
                for i in range(4)
            ]
            outs = await asyncio.gather(
                *(
                    c.submit(("put", f"k{i}", big))
                    for i, c in enumerate(clients)
                )
            )
            await cluster.stop()
            return pipeline, recorder, outs

        pipeline, recorder, outs = asyncio.run(scenario())
        assert all(out[0] == "value" for out in outs)
        assert pipeline.splits > 0
        assert pipeline.batched_ops == 4
        assert pipeline.decrees >= 2
        assert _check(recorder).ok

    def test_unframeable_op_is_a_per_op_error_not_a_poisoning(self):
        """PayloadTooLarge: pre-invocation, client survives, history
        stays clean, the connection keeps working."""

        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            pipeline = SlotPipeline(
                "main", 3, transport, quorum_timeout=0.15
            )
            client = PipelineClient("c0", pipeline, recorder, op_timeout=5.0)
            with pytest.raises(PayloadTooLarge):
                await client.submit(("put", "k", "x" * MAX_FRAME))
            # nothing recorded, nothing queued, client not poisoned
            assert recorder.pending_clients() == ()
            assert not client.poisoned
            out = await client.submit(("put", "k", 1))
            await cluster.stop()
            return recorder, out

        recorder, out = asyncio.run(scenario())
        assert out == ("value", None)  # first put on the fresh cell
        assert _check(recorder).ok

    def test_netclient_oversized_op_is_a_typed_per_op_error(self):
        """The probing client gets the same discipline: RequestTooLarge
        pre-invocation, then business as usual on the same socket."""

        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            frontend = UniversalFrontend(kv_store_adt())
            client = NetClient(
                "c0", 3, transport, {}, recorder, frontend,
                quorum_timeout=0.15, op_timeout=5.0,
            )
            with pytest.raises(RequestTooLarge):
                await client.submit(("put", "k", "x" * MAX_FRAME))
            assert recorder.pending_clients() == ()
            out = await client.submit(("put", "k", 2))
            await cluster.stop()
            return recorder, out

        recorder, out = asyncio.run(scenario())
        assert out == ("value", None)  # first put on the fresh cell
        assert _check(recorder).ok

    def test_cancelled_submit_leaves_a_pending_invocation(self):
        """A submitter task killed mid-flight must leave the op as a
        *pending invocation* in the history — never an effect with no
        invocation.  The op was enqueued before the cancel, so it still
        decides and takes effect on the replicas; a later reader then
        observes that effect, and only the recorded open invocation
        makes the combined history linearizable (regression: recording
        the invocation only after the enqueue loses the race)."""

        async def scenario():
            cluster = LocalCluster(n_servers=3, codec="binary")
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            pipeline = SlotPipeline(
                "main", 3, transport, window=4, max_batch=16,
                quorum_timeout=0.15,
            )
            doomed = PipelineClient("c0", pipeline, recorder, op_timeout=5.0)
            task = asyncio.ensure_future(doomed.submit(("put", "k", "lost")))
            # one loop tick: the invocation is recorded and the op is in
            # the pipeline's hands — but the decree has not decided yet
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # the orphaned op still commits; a fresh client reads it
            reader = PipelineClient("c1", pipeline, recorder, op_timeout=5.0)
            out = await reader.submit(("get", "k"))
            await cluster.stop()
            return recorder, out

        recorder, out = asyncio.run(scenario())
        # the cancelled op's effect is visible to the reader...
        assert out == ("value", "lost")
        # ...and the history explains it: c0's invocation is pending
        assert recorder.pending_clients() == ("c0",)
        assert _check(recorder).ok
        # the streaming monitor sees the same trace the same way
        from repro.monitor import watch_trace

        assert watch_trace(recorder.trace(), kv_store_adt()).verdict == "ok"


# ---------------------------------------------------------------------------
# the full data plane end to end (loadgen)
# ---------------------------------------------------------------------------


class TestPipelinedLoadgen:
    def test_sharded_pipelined_run_is_linearizable(self, tmp_path):
        report = run_loadgen(
            replicas=3,
            clients=8,
            ops=96,
            seed=11,
            shards=2,
            window=8,
            batch=16,
            codec="binary",
            group_commit=True,
            wal_root=str(tmp_path),
            emit=SILENT,
        )
        assert report.committed == 96
        assert report.linearizable
        assert report.shard_verdicts == ["linearizable", "linearizable"]
        assert report.pipelined and report.shards == 2
        assert report.codec == "binary"
        # batching engaged: fewer decrees than ops
        assert 0 < report.decrees < report.committed
        assert report.batched_ops == report.committed

    def test_kill_mid_run_pipelined_stays_linearizable(self, tmp_path):
        report = run_loadgen(
            replicas=3,
            clients=8,
            ops=96,
            seed=13,
            kill=2,
            kill_after=0.3,
            shards=2,
            codec="binary",
            group_commit=True,
            wal_root=str(tmp_path),
            op_timeout=20.0,
            emit=SILENT,
        )
        assert report.killed == 2
        assert report.committed == 96
        assert report.linearizable
        # with a replica dead Quorum unanimity is impossible: the tail
        # of the run must have committed through the Backup path
        assert report.slow > 0

    def test_shard_routing_matches_partition_key(self):
        # the router and the checker partition by the same key, which
        # is what makes per-shard checking compositional
        keys = [f"key{i:02d}" for i in range(12)]
        shards = {shard_of(k, 2) for k in keys}
        assert shards == {0, 1}
        for k in keys:
            assert shard_of(k, 2) == shard_of(k, 2)  # deterministic
