"""Property tests for the wire codec (`repro.net.codec`).

The codec's contract is ``decode ∘ encode = id`` over every value the
protocols ever put on the wire: nested tuples (pids, tagged KV
commands), lists, dicts, and scalars.  Tested three ways — randomized
payloads via hypothesis, the concrete message family of every protocol
role, and the framing edges at :data:`MAX_FRAME`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.codec import (
    FrameDecoder,
    FrameError,
    MAX_FRAME,
    decode_payload,
    encode_frame,
    encode_payload,
)

# ---------------------------------------------------------------------------
# randomized payloads
# ---------------------------------------------------------------------------

scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2 ** 53), max_value=2 ** 53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
)

#: hashable payloads usable as dict keys and set-free tuple members
hashable_payloads = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=12,
)

payloads = st.recursive(
    scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.lists(children, max_size=4).map(tuple)
        | st.dictionaries(hashable_payloads, children, max_size=4)
    ),
    max_leaves=16,
)


@settings(max_examples=200, deadline=None)
@given(payloads)
def test_payload_round_trip(value):
    assert decode_payload(encode_payload(value)) == value


@settings(max_examples=100, deadline=None)
@given(payloads)
def test_frame_round_trip(value):
    decoder = FrameDecoder()
    (decoded,) = decoder.feed_all(encode_frame(value))
    assert decoded == value


@settings(max_examples=50, deadline=None)
@given(st.lists(payloads, min_size=1, max_size=5), st.data())
def test_stream_reassembly_at_arbitrary_chunking(values, data):
    """TCP may split/glue frames arbitrarily; the decoder must not care."""
    stream = b"".join(encode_frame(v) for v in values)
    decoder = FrameDecoder()
    out = []
    position = 0
    while position < len(stream):
        size = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position)
        )
        out.extend(decoder.feed(stream[position : position + size]))
        position += size
    assert out == values


# ---------------------------------------------------------------------------
# the concrete message families of Quorum / Paxos / Backup / SMR
# ---------------------------------------------------------------------------

KV_COMMANDS = [
    ("put", "alpha", 7, ("seq", ("c0", 4))),
    ("get", "beta", ("seq", ("c1", 1))),
    ("delete", "gamma", ("seq", ("c7", 19))),
]

PIDS = [
    ("qs", 3, 1),
    ("acc", 0, 2),
    ("coord", 12, 0),
    ("ctl", 0, 1),
    ("qcli", (("c0", 4), 2)),
    ("bcli", (("c1", 9), 1)),
]

MESSAGES = (
    [("q-propose", cmd) for cmd in KV_COMMANDS]
    + [("q-accept", cmd) for cmd in KV_COMMANDS]
    + [
        ("prepare", 7),
        ("promise", 7, -1, None),
        ("promise", 9, 4, KV_COMMANDS[0]),
        ("nack", 7, 12),
        ("accept", 7, KV_COMMANDS[1]),
        ("accepted", 7, KV_COMMANDS[1]),
        ("request", KV_COMMANDS[2]),
        ("decision", KV_COMMANDS[0]),
        ("register-learner", 5, ("bcli", (("c0", 4), 1))),
    ]
)


@pytest.mark.parametrize("message", MESSAGES, ids=[m[0] for m in MESSAGES])
@pytest.mark.parametrize("src", PIDS[:2], ids=["from-qs", "from-acc"])
def test_protocol_envelopes_round_trip(src, message):
    envelope = (src, PIDS[-1], message)
    decoder = FrameDecoder()
    (decoded,) = decoder.feed_all(encode_frame(envelope))
    assert decoded == envelope
    # Exact types, not just equality: tuples must come back as tuples
    # (pids are dict keys, commands are compared with ==).
    assert type(decoded) is tuple
    assert type(decoded[2]) is tuple


def test_tuple_list_distinction_survives():
    value = (("a", 1), ["a", 1], {"k": ("v",)})
    decoded = decode_payload(encode_payload(value))
    assert type(decoded[0]) is tuple
    assert type(decoded[1]) is list
    assert type(decoded[2]["k"]) is tuple


# ---------------------------------------------------------------------------
# framing edges
# ---------------------------------------------------------------------------


def test_frame_just_under_limit_round_trips():
    # JSON overhead: quotes around the string, so body = len + 2.
    value = "x" * (MAX_FRAME - 2)
    decoder = FrameDecoder()
    (decoded,) = decoder.feed_all(encode_frame(value))
    assert decoded == value


def test_oversized_frame_refused_by_encoder():
    with pytest.raises(FrameError, match="exceeds MAX_FRAME"):
        encode_frame("x" * MAX_FRAME)


def test_oversized_announcement_refused_by_decoder():
    import struct

    decoder = FrameDecoder()
    bogus = struct.pack(">I", MAX_FRAME + 1)
    with pytest.raises(FrameError, match="announced"):
        list(decoder.feed(bogus))


def test_garbage_body_refused():
    import struct

    decoder = FrameDecoder()
    with pytest.raises(FrameError, match="not JSON"):
        list(decoder.feed(struct.pack(">I", 4) + b"\xff\xfe\xfd\xfc"))


def test_unencodable_payload_refused():
    with pytest.raises(FrameError, match="not wire-encodable"):
        encode_payload(object())


def test_unknown_container_tag_refused():
    with pytest.raises(FrameError, match="unknown container tag"):
        decode_payload({"z": []})
