"""Property tests for the wire codecs (`repro.net.codec`).

The codec contract is ``decode ∘ encode = id`` over every value the
protocols ever put on the wire: nested tuples (pids, tagged KV
commands), lists, dicts, and scalars.  Tested three ways — randomized
payloads via hypothesis, the concrete message family of every protocol
role, and the framing edges at :data:`MAX_FRAME`.

Two codecs implement that contract (tagged JSON and the struct-packed
binary format), so on top of each codec's round trip the *parity*
properties check they agree value-for-value, that one decoder handles
a mixed-codec stream via the magic-byte dispatch, and that both raise
the typed :exc:`FrameTooLarge` at the frame bound.
"""

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.codec import (
    BINARY_CODEC,
    BINARY_MAGIC,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    JSON_CODEC,
    MAX_FRAME,
    decode_payload,
    encode_frame,
    encode_payload,
    get_codec,
)

# ---------------------------------------------------------------------------
# randomized payloads
# ---------------------------------------------------------------------------

scalars = (
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2 ** 53), max_value=2 ** 53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
)

#: hashable payloads usable as dict keys and set-free tuple members
hashable_payloads = st.recursive(
    scalars,
    lambda children: st.lists(children, max_size=4).map(tuple),
    max_leaves=12,
)

payloads = st.recursive(
    scalars,
    lambda children: (
        st.lists(children, max_size=4)
        | st.lists(children, max_size=4).map(tuple)
        | st.dictionaries(hashable_payloads, children, max_size=4)
    ),
    max_leaves=16,
)


@settings(max_examples=200, deadline=None)
@given(payloads)
def test_payload_round_trip(value):
    assert decode_payload(encode_payload(value)) == value


@settings(max_examples=100, deadline=None)
@given(payloads)
def test_frame_round_trip(value):
    decoder = FrameDecoder()
    (decoded,) = decoder.feed_all(encode_frame(value))
    assert decoded == value


@settings(max_examples=50, deadline=None)
@given(st.lists(payloads, min_size=1, max_size=5), st.data())
def test_stream_reassembly_at_arbitrary_chunking(values, data):
    """TCP may split/glue frames arbitrarily; the decoder must not care."""
    stream = b"".join(encode_frame(v) for v in values)
    decoder = FrameDecoder()
    out = []
    position = 0
    while position < len(stream):
        size = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position)
        )
        out.extend(decoder.feed(stream[position : position + size]))
        position += size
    assert out == values


# ---------------------------------------------------------------------------
# the concrete message families of Quorum / Paxos / Backup / SMR
# ---------------------------------------------------------------------------

KV_COMMANDS = [
    ("put", "alpha", 7, ("seq", ("c0", 4))),
    ("get", "beta", ("seq", ("c1", 1))),
    ("delete", "gamma", ("seq", ("c7", 19))),
]

PIDS = [
    ("qs", 3, 1),
    ("acc", 0, 2),
    ("coord", 12, 0),
    ("ctl", 0, 1),
    ("qcli", (("c0", 4), 2)),
    ("bcli", (("c1", 9), 1)),
]

MESSAGES = (
    [("q-propose", cmd) for cmd in KV_COMMANDS]
    + [("q-accept", cmd) for cmd in KV_COMMANDS]
    + [
        ("prepare", 7),
        ("promise", 7, -1, None),
        ("promise", 9, 4, KV_COMMANDS[0]),
        ("nack", 7, 12),
        ("accept", 7, KV_COMMANDS[1]),
        ("accepted", 7, KV_COMMANDS[1]),
        ("request", KV_COMMANDS[2]),
        ("decision", KV_COMMANDS[0]),
        ("register-learner", 5, ("bcli", (("c0", 4), 1))),
    ]
)


@pytest.mark.parametrize("message", MESSAGES, ids=[m[0] for m in MESSAGES])
@pytest.mark.parametrize("src", PIDS[:2], ids=["from-qs", "from-acc"])
def test_protocol_envelopes_round_trip(src, message):
    envelope = (src, PIDS[-1], message)
    decoder = FrameDecoder()
    (decoded,) = decoder.feed_all(encode_frame(envelope))
    assert decoded == envelope
    # Exact types, not just equality: tuples must come back as tuples
    # (pids are dict keys, commands are compared with ==).
    assert type(decoded) is tuple
    assert type(decoded[2]) is tuple


def test_tuple_list_distinction_survives():
    value = (("a", 1), ["a", 1], {"k": ("v",)})
    decoded = decode_payload(encode_payload(value))
    assert type(decoded[0]) is tuple
    assert type(decoded[1]) is list
    assert type(decoded[2]["k"]) is tuple


# ---------------------------------------------------------------------------
# framing edges
# ---------------------------------------------------------------------------


def test_frame_just_under_limit_round_trips():
    # JSON overhead: quotes around the string, so body = len + 2.
    value = "x" * (MAX_FRAME - 2)
    decoder = FrameDecoder()
    (decoded,) = decoder.feed_all(encode_frame(value))
    assert decoded == value


def test_oversized_frame_refused_by_encoder():
    with pytest.raises(FrameError, match="exceeds MAX_FRAME"):
        encode_frame("x" * MAX_FRAME)


def test_oversized_announcement_refused_by_decoder():
    import struct

    decoder = FrameDecoder()
    bogus = struct.pack(">I", MAX_FRAME + 1)
    with pytest.raises(FrameError, match="announced"):
        list(decoder.feed(bogus))


def test_garbage_body_refused():
    import struct

    decoder = FrameDecoder()
    with pytest.raises(FrameError, match="not JSON"):
        list(decoder.feed(struct.pack(">I", 4) + b"\xff\xfe\xfd\xfc"))


def test_unencodable_payload_refused():
    with pytest.raises(FrameError, match="not wire-encodable"):
        encode_payload(object())


def test_unknown_container_tag_refused():
    with pytest.raises(FrameError, match="unknown container tag"):
        decode_payload({"z": []})


# ---------------------------------------------------------------------------
# JSON / binary parity
# ---------------------------------------------------------------------------


def _decode_one(frame):
    (value,) = FrameDecoder().feed_all(frame)
    return value


@settings(max_examples=200, deadline=None)
@given(payloads)
def test_codec_parity_on_random_payloads(value):
    """Both codecs round-trip the same value space to the same result."""
    via_json = _decode_one(JSON_CODEC.encode_frame(value))
    via_binary = _decode_one(BINARY_CODEC.encode_frame(value))
    assert via_json == value
    assert via_binary == value


@pytest.mark.parametrize("message", MESSAGES, ids=[m[0] for m in MESSAGES])
def test_binary_protocol_envelopes_round_trip(message):
    envelope = (PIDS[0], PIDS[-1], message)
    decoded = _decode_one(BINARY_CODEC.encode_frame(envelope))
    assert decoded == envelope
    # exact container types, same as the JSON test above
    assert type(decoded) is tuple
    assert type(decoded[2]) is tuple


def test_binary_tuple_list_distinction_survives():
    value = (("a", 1), ["a", 1], {"k": ("v",)})
    decoded = _decode_one(BINARY_CODEC.encode_frame(value))
    assert type(decoded[0]) is tuple
    assert type(decoded[1]) is list
    assert type(decoded[2]["k"]) is tuple


def test_binary_unicode_round_trips():
    value = ("ключ", "héllo wörld", "🧪" * 40, "\x00\x7f")
    assert _decode_one(BINARY_CODEC.encode_frame(value)) == value


def test_binary_big_integers_round_trip():
    # beyond int64 the codec falls back to decimal digits; bools must
    # not be swallowed by the int path either
    value = (2 ** 100, -(2 ** 100), 2 ** 63 - 1, -(2 ** 63), True, False)
    decoded = _decode_one(BINARY_CODEC.encode_frame(value))
    assert decoded == value
    assert [type(v) for v in decoded] == [type(v) for v in value]


def test_mixed_codec_stream_decodes_uniformly():
    """One decoder serves peers on either codec (magic-byte dispatch)."""
    values = [("a", 1), {"k": (2, None)}, [True, "x"]]
    stream = b"".join(
        (BINARY_CODEC if i % 2 else JSON_CODEC).encode_frame(v)
        for i, v in enumerate(values)
    )
    assert FrameDecoder().feed_all(stream) == values


def test_binary_frames_smaller_on_floats_and_unicode():
    # where the binary format's fixed-width packing wins: floats are 8
    # bytes instead of up to 17 decimal digits, and non-ASCII text is
    # raw UTF-8 instead of six-byte \uXXXX escapes
    value = (tuple(0.1 * i for i in range(20)), "значение" * 10)
    assert len(BINARY_CODEC.encode_frame(value)) < len(
        JSON_CODEC.encode_frame(value)
    )


def test_get_codec_lookup():
    assert get_codec("json") is JSON_CODEC
    assert get_codec("binary") is BINARY_CODEC
    with pytest.raises(FrameError, match="unknown codec"):
        get_codec("protobuf")


def test_binary_magic_never_starts_a_json_body():
    # the dispatch invariant: every JSON body is ASCII, the magic is not
    assert BINARY_MAGIC > 0x7F
    body = JSON_CODEC.encode_frame({"k": ("v",)})[4:]
    assert body[0] != BINARY_MAGIC


# ---------------------------------------------------------------------------
# binary framing edges
# ---------------------------------------------------------------------------


def test_binary_frame_just_under_limit_round_trips():
    # binary overhead for a str: magic + tag + u32 length = 6 bytes
    value = "x" * (MAX_FRAME - 6)
    assert _decode_one(BINARY_CODEC.encode_frame(value)) == value


def test_binary_oversized_frame_raises_typed_error():
    with pytest.raises(FrameTooLarge, match="exceeds MAX_FRAME"):
        BINARY_CODEC.encode_frame("x" * MAX_FRAME)


def test_json_oversized_frame_raises_typed_error():
    # FrameTooLarge is a FrameError: old call sites that catch the
    # broad class keep working, new ones can split-and-retry
    with pytest.raises(FrameTooLarge, match="exceeds MAX_FRAME"):
        JSON_CODEC.encode_frame("x" * MAX_FRAME)
    assert issubclass(FrameTooLarge, FrameError)


def test_binary_truncated_body_refused():
    # magic + tuple header announcing 3 items, but no items follow
    body = bytes([BINARY_MAGIC]) + b"t" + struct.pack(">I", 3)
    with pytest.raises(FrameError, match="truncated"):
        _decode_one(struct.pack(">I", len(body)) + body)


def test_binary_trailing_bytes_refused():
    body = bytes([BINARY_MAGIC]) + b"N" + b"junk"
    with pytest.raises(FrameError, match="trailing"):
        _decode_one(struct.pack(">I", len(body)) + body)


def test_binary_unknown_tag_refused():
    body = bytes([BINARY_MAGIC]) + b"Z"
    with pytest.raises(FrameError, match="unknown binary tag"):
        _decode_one(struct.pack(">I", len(body)) + body)
