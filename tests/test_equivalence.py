"""Theorem 1: the new definition of linearizability vs the classical one.

The paper proves the definitions equivalent, while also noting that other
definitions "assume more or less explicitly that all inputs submitted are
unique" and that the new one "coincides with the other definitions on
traces satisfying the assumption".  The tests below map the boundary
precisely:

* classical  =>  new holds unconditionally (a classical witness induces a
  linearization function);
* the converse holds on traces with unique inputs — and empirically on
  ADTs whose outputs are insensitive to which duplicate fills a history
  slot (consensus, registers, queues over our input pools);
* with repeated inputs on an *order-sensitive* ADT (the fetch-and-add
  counter) the new definition is strictly coarser: multiset validity
  cannot attribute which of two identical invocations occupies a slot,
  so a real-time edge can be laundered through a duplicate.  The exact
  counterexample is pinned below.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adt import (
    consensus_adt,
    counter_adt,
    deq,
    enq,
    inc,
    propose,
    queue_adt,
    reg_read,
    reg_write,
    register_adt,
)
from repro.core.classical import is_linearizable_classical
from repro.core.linearizability import is_linearizable

from helpers import random_wellformed_trace

# Families on which the two checkers agree (outputs insensitive to which
# duplicate input occupies a slot, or inputs effectively unique).  Seeds
# are fixed integers: the sweeps are fully deterministic.
ADT_CASES = [
    ("consensus", consensus_adt(), [propose("a"), propose("b")], 1001),
    (
        "register",
        register_adt(),
        [reg_read(), reg_write(1), reg_write(2)],
        1002,
    ),
    ("queue", queue_adt(), [enq(1), enq(2), deq()], 1003),
    ("counter-unique", counter_adt(), [inc(1), inc(2), inc(4)], 1004),
]

ALL_CASES = ADT_CASES + [
    ("counter-dup", counter_adt(), [inc(), inc(2)], 1005),
]


@pytest.mark.parametrize("name,adt,inputs,seed", ADT_CASES)
def test_equivalence_on_random_traces(name, adt, inputs, seed):
    """Both checkers agree on 150 random traces per family (Theorem 1)."""
    rng = random.Random(seed)
    disagreements = []
    for i in range(150):
        t = random_wellformed_trace(
            rng, adt, inputs, n_clients=3, n_steps=rng.randrange(2, 9)
        )
        new = is_linearizable(t, adt)
        classical = is_linearizable_classical(t, adt)
        if new != classical:
            disagreements.append((i, t.actions, new, classical))
    assert not disagreements, disagreements[:2]


@pytest.mark.parametrize("name,adt,inputs,seed", ADT_CASES)
def test_equivalence_with_pending_invocations(name, adt, inputs, seed):
    """Agreement also on traces with pending invocations."""
    rng = random.Random(seed + 7)
    for i in range(80):
        t = random_wellformed_trace(
            rng, adt, inputs, n_clients=4, n_steps=7
        )
        assert is_linearizable(t, adt) == is_linearizable_classical(t, adt)


@pytest.mark.parametrize("name,adt,inputs,seed", ALL_CASES)
def test_classical_implies_new_unconditionally(name, adt, inputs, seed):
    """One direction of Theorem 1 holds on *every* family, duplicates
    included: a classical witness always yields a linearization
    function."""
    rng = random.Random(seed + 13)
    for i in range(120):
        t = random_wellformed_trace(
            rng, adt, inputs, n_clients=3, n_steps=rng.randrange(2, 9)
        )
        if is_linearizable_classical(t, adt):
            assert is_linearizable(t, adt), t.actions


def test_duplicate_inputs_on_order_sensitive_adt_diverge():
    """The boundary of Theorem 1 (anticipated by §4.3's uniqueness
    remark): with two identical fetch-and-add invocations, the new
    definition accepts a trace the classical one rejects — c0's
    increment is invoked *after* c2's response, yet the multiset
    accounting lets an identical earlier increment stand in for it."""
    from repro.core.actions import inv, res
    from repro.core.traces import Trace

    adt = counter_adt()
    t = Trace(
        [
            inv("c2", 1, inc()),
            inv("c1", 1, inc()),
            res("c2", 1, inc(), ("count", 1)),
            inv("c0", 1, inc()),
            res("c1", 1, inc(), ("count", 2)),
        ]
    )
    assert not is_linearizable_classical(t, adt)
    assert is_linearizable(t, adt)  # the documented divergence


@settings(max_examples=60, deadline=None)
@given(
    st.integers(0, 2**30),
    st.integers(2, 4),
    st.integers(2, 8),
)
def test_equivalence_hypothesis_consensus(seed, n_clients, n_steps):
    """Hypothesis-driven Theorem 1 check on the consensus ADT."""
    adt = consensus_adt()
    rng = random.Random(seed)
    t = random_wellformed_trace(
        rng,
        adt,
        [propose("a"), propose("b"), propose("c")],
        n_clients=n_clients,
        n_steps=n_steps,
    )
    assert is_linearizable(t, adt) == is_linearizable_classical(t, adt)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**30), st.integers(2, 8))
def test_equivalence_hypothesis_register(seed, n_steps):
    """Hypothesis-driven Theorem 1 check on the register ADT."""
    adt = register_adt()
    rng = random.Random(seed)
    t = random_wellformed_trace(
        rng,
        adt,
        [reg_read(), reg_write(1), reg_write(2)],
        n_clients=3,
        n_steps=n_steps,
    )
    assert is_linearizable(t, adt) == is_linearizable_classical(t, adt)


def test_equivalence_on_repeated_inputs():
    """The new definition handles repeated events; both checkers must
    still coincide when every client proposes the same value."""
    adt = consensus_adt()
    rng = random.Random(99)
    for _ in range(60):
        t = random_wellformed_trace(
            rng, adt, [propose("same")], n_clients=3, n_steps=6
        )
        assert is_linearizable(t, adt) == is_linearizable_classical(t, adt)


def test_realtime_counterexample_to_unrepaired_definition():
    """The trace that separates the paper's literal Definition 6 from the
    classical definition: a read invoked after a completed write cannot
    return the pre-write value.  Both checkers must reject it (the new
    checker only does so thanks to the Real-Time Order repair)."""
    from repro.core.actions import inv, res
    from repro.core.traces import Trace

    adt = register_adt()
    t = Trace(
        [
            inv("w", 1, reg_write(2)),
            res("w", 1, reg_write(2), ("ok",)),
            inv("r", 1, reg_read()),
            res("r", 1, reg_read(), ("value", None)),
        ]
    )
    assert not is_linearizable_classical(t, adt)
    assert not is_linearizable(t, adt)


def test_realtime_repair_does_not_reject_overlapping_ops():
    """Out-of-order commits of *overlapping* operations stay legal."""
    from repro.core.actions import inv, res
    from repro.core.traces import Trace

    adt = register_adt()
    t = Trace(
        [
            inv("w", 1, reg_write(1)),
            inv("r", 1, reg_read()),
            res("w", 1, reg_write(1), ("ok",)),
            res("r", 1, reg_read(), ("value", None)),
        ]
    )
    assert is_linearizable(t, adt)
    assert is_linearizable_classical(t, adt)
