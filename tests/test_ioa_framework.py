"""Tests for the I/O automata framework (paper Section 6 substrate)."""

import pytest

from repro.ioa import (
    FunctionalAutomaton,
    check_inductive,
    check_invariants,
    compose_automata,
    executions,
    external_traces,
    hide,
    reachable_states,
    run_schedule,
)


def counter_automaton(name="counter", limit=3):
    """Outputs ("tick", name) until a limit; accepts ("reset",) input."""

    def transitions(state):
        if state < limit:
            yield ("tick", name), state + 1

    def input_step(state, action):
        if action == ("reset",):
            return 0
        return state

    return FunctionalAutomaton(
        name=name,
        initial=[0],
        is_input=lambda a: a == ("reset",),
        is_output=lambda a: a == ("tick", name),
        is_internal=lambda a: False,
        transitions=transitions,
        input_step=input_step,
    )


def listener_automaton(watched):
    """Counts ("tick", watched) inputs; no outputs of its own."""

    def input_step(state, action):
        if action == ("tick", watched):
            return state + 1
        return state

    return FunctionalAutomaton(
        name="listener",
        initial=[0],
        is_input=lambda a: a == ("tick", watched),
        is_output=lambda a: False,
        is_internal=lambda a: False,
        transitions=lambda state: iter(()),
        input_step=input_step,
    )


class TestReachability:
    def test_closed_exploration(self):
        auto = counter_automaton(limit=3)
        assert reachable_states(auto) == {0, 1, 2, 3}

    def test_environment_inputs(self):
        auto = counter_automaton(limit=2)
        states = reachable_states(
            auto, environment=lambda s: [("reset",)]
        )
        assert states == {0, 1, 2}

    def test_state_budget(self):
        from repro.ioa import StateSpaceBound

        auto = counter_automaton(limit=100)
        with pytest.raises(StateSpaceBound):
            reachable_states(auto, max_states=5)


class TestExecutions:
    def test_prefix_closed(self):
        auto = counter_automaton(limit=2)
        runs = list(executions(auto, max_depth=2))
        lengths = sorted(len(e.steps) for e in runs)
        assert lengths == [0, 1, 2]

    def test_external_traces(self):
        auto = counter_automaton(limit=2)
        traces = external_traces(auto, max_depth=2)
        assert (("tick", "counter"),) in traces
        assert () in traces

    def test_run_schedule(self):
        auto = counter_automaton(limit=2)
        execution = run_schedule(
            auto, [("tick", "counter"), ("reset",), ("tick", "counter")]
        )
        assert execution is not None
        assert execution.final == 1

    def test_run_schedule_disabled_action(self):
        auto = counter_automaton(limit=0)
        assert run_schedule(auto, [("tick", "counter")]) is None


class TestComposition:
    def test_synchronization(self):
        producer = counter_automaton(name="p", limit=2)
        consumer = listener_automaton("p")
        system = compose_automata(producer, consumer)
        states = reachable_states(system)
        # The listener's count always equals the producer's state.
        assert all(p == c for p, c in states)

    def test_output_classification(self):
        producer = counter_automaton(name="p", limit=1)
        consumer = listener_automaton("p")
        system = compose_automata(producer, consumer)
        assert system.is_output(("tick", "p"))
        assert not system.is_input(("tick", "p"))

    def test_external_input_broadcast(self):
        producer = counter_automaton(name="p", limit=5)
        consumer = listener_automaton("p")
        system = compose_automata(producer, consumer)
        state = next(iter(system.initial_states()))
        state = system.input_step(state, ("reset",))
        assert state[0] == 0

    def test_three_way_composition(self):
        producer = counter_automaton(name="p", limit=2)
        c1 = listener_automaton("p")
        c2 = listener_automaton("p")
        system = compose_automata(producer, c1, c2)
        states = reachable_states(system)
        assert all(a == b == c for a, b, c in states)


class TestHiding:
    def test_hidden_outputs_become_internal(self):
        auto = counter_automaton(limit=2)
        hidden = hide(auto, lambda a: a == ("tick", "counter"))
        assert hidden.is_internal(("tick", "counter"))
        assert not hidden.is_output(("tick", "counter"))

    def test_hidden_actions_leave_traces(self):
        auto = counter_automaton(limit=2)
        hidden = hide(auto, lambda a: a == ("tick", "counter"))
        traces = external_traces(hidden, max_depth=2)
        assert traces == {()}


class TestInvariants:
    def test_check_invariants_pass(self):
        auto = counter_automaton(limit=3)
        explored, violations = check_invariants(
            auto, [("bounded", lambda s: s <= 3)]
        )
        assert explored == 4
        assert violations == []

    def test_check_invariants_fail_with_path(self):
        auto = counter_automaton(limit=3)
        explored, violations = check_invariants(
            auto, [("tiny", lambda s: s <= 1)]
        )
        assert len(violations) == 1
        violation = violations[0]
        assert violation.state == 2
        assert len(violation.path) == 2

    def test_inductive_invariant(self):
        auto = counter_automaton(limit=3)
        ok, _ = check_inductive(auto, lambda s: s <= 3, range(0, 4))
        assert ok

    def test_non_inductive_detected(self):
        auto = counter_automaton(limit=3)
        ok, cex = check_inductive(auto, lambda s: s <= 1, range(0, 4))
        assert not ok
        assert cex == 1  # the state whose successor escapes
