"""Tests for the intra-object composition theorem (paper §5.6, App. C).

The theorem is checked three ways:

* on handcrafted composed traces covering fast-path, slow-path and mixed
  executions;
* on systematically enumerated interleavings of compatible phase traces;
* on traces produced by the simulated Quorum+Backup and RCons+CASCons
  deployments (in the substrate test files).
"""

import random

from repro.core.actions import inv, res, swi
from repro.core.adt import consensus_adt, decide, propose
from repro.core.composition import (
    check_composition_theorem,
    check_theorem_2,
    components_compatible,
    decompose,
    interleavings,
    random_interleaving,
    shared_actions,
)
from repro.core.speculative import consensus_rinit
from repro.core.traces import Trace

P, D = propose, decide
CONS = consensus_adt()
RIN = consensus_rinit(["v1", "v2"], max_extra=1)


def fast_slow_trace():
    """c1 decides in phase 1; c2 switches and decides in phase 2."""
    return Trace(
        [
            inv("c1", 1, P("v1")),
            inv("c2", 1, P("v2")),
            res("c1", 1, P("v1"), D("v1")),
            swi("c2", 2, P("v2"), "v1"),
            res("c2", 2, P("v2"), D("v1")),
        ]
    )


class TestDecomposition:
    def test_shared_actions(self):
        t = fast_slow_trace()
        assert shared_actions(t, 2) == (swi("c2", 2, P("v2"), "v1"),)

    def test_decompose_projections(self):
        t = fast_slow_trace()
        t12, t23 = decompose(t, 1, 2, 3)
        assert swi("c2", 2, P("v2"), "v1") in t12.actions
        assert swi("c2", 2, P("v2"), "v1") in t23.actions
        assert res("c2", 2, P("v2"), D("v1")) in t23.actions
        assert res("c2", 2, P("v2"), D("v1")) not in t12.actions

    def test_components_compatible(self):
        t = fast_slow_trace()
        t12, t23 = decompose(t, 1, 2, 3)
        assert components_compatible(t12, t23, 2)

    def test_components_incompatible_on_disagreement(self):
        t12 = Trace([inv("c", 1, P("v1")), swi("c", 2, P("v1"), "v1")])
        t23 = Trace([swi("c", 2, P("v1"), "v2")])
        assert not components_compatible(t12, t23, 2)


class TestInterleavings:
    def test_roundtrip_projections(self):
        t = fast_slow_trace()
        t12, t23 = decompose(t, 1, 2, 3)
        merged = list(interleavings(t12, t23, 2))
        assert merged, "at least one interleaving exists"
        for candidate in merged:
            a, b = decompose(candidate, 1, 2, 3)
            assert a == t12
            assert b == t23

    def test_original_among_interleavings(self):
        t = fast_slow_trace()
        t12, t23 = decompose(t, 1, 2, 3)
        assert t in set(interleavings(t12, t23, 2))

    def test_limit(self):
        t = fast_slow_trace()
        t12, t23 = decompose(t, 1, 2, 3)
        assert len(list(interleavings(t12, t23, 2, limit=1))) == 1

    def test_incompatible_yields_nothing(self):
        t12 = Trace([inv("c", 1, P("v1")), swi("c", 2, P("v1"), "v1")])
        t23 = Trace([swi("c", 2, P("v1"), "v2")])
        assert list(interleavings(t12, t23, 2)) == []

    def test_random_interleaving_valid(self):
        t = fast_slow_trace()
        t12, t23 = decompose(t, 1, 2, 3)
        rng = random.Random(0)
        for _ in range(10):
            candidate = random_interleaving(t12, t23, 2, rng)
            assert candidate is not None
            a, b = decompose(candidate, 1, 2, 3)
            assert a == t12 and b == t23


class TestCompositionTheorem:
    def test_fast_slow_composition(self):
        ok, why = check_composition_theorem(fast_slow_trace(), 1, 2, 3, CONS, RIN)
        assert ok, why
        assert "composition is SLin" in why

    def test_pure_fast_path(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v1")),
                inv("c2", 1, P("v2")),
                res("c2", 1, P("v2"), D("v1")),
            ]
        )
        ok, why = check_composition_theorem(t, 1, 2, 3, CONS, RIN)
        assert ok and "composition is SLin" in why

    def test_pure_slow_path(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                swi("c1", 2, P("v1"), "v1"),
                swi("c2", 2, P("v2"), "v2"),
                res("c1", 2, P("v1"), D("v1")),
                res("c2", 2, P("v2"), D("v1")),
            ]
        )
        ok, why = check_composition_theorem(t, 1, 2, 3, CONS, RIN)
        assert ok and "composition is SLin" in why

    def test_premise_failure_reported(self):
        # Phase 1 decides two different values: its projection is not
        # SLin(1,2), so the implication is vacuous.
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v2")),
            ]
        )
        ok, why = check_composition_theorem(t, 1, 2, 3, CONS, RIN)
        assert ok and "premise fails" in why

    def test_theorem_over_all_interleavings(self):
        t = fast_slow_trace()
        t12, t23 = decompose(t, 1, 2, 3)
        for candidate in interleavings(t12, t23, 2):
            ok, why = check_composition_theorem(candidate, 1, 2, 3, CONS, RIN)
            assert ok, (why, candidate.actions)

    def test_theorem_on_double_switch(self):
        # Both clients switch, second phase serves both.
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                swi("c1", 2, P("v1"), "v1"),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v1"),
                res("c2", 2, P("v2"), D("v1")),
                res("c1", 2, P("v1"), D("v1")),
            ]
        )
        ok, why = check_composition_theorem(t, 1, 2, 3, CONS, RIN)
        assert ok, why


class TestTheorem2:
    def test_fast_slow(self):
        ok, why = check_theorem_2(fast_slow_trace(), 3, CONS, RIN)
        assert ok and "linearizable" in why

    def test_vacuous_when_not_slin(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v2")),
            ]
        )
        ok, why = check_theorem_2(t, 2, CONS, RIN)
        assert ok and "premise fails" in why

    def test_projection_drops_switches(self):
        from repro.core.traces import strip_phase_tags

        t = fast_slow_trace()
        projected = strip_phase_tags(t)
        assert all(a.phase == 1 for a in projected)
        assert len(projected) == 4
