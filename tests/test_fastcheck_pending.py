"""Histories with pending (timed-out) operations through ``fastcheck``.

The networked runtime records Jepsen-style histories: an operation whose
client timed out stays in the trace as an invocation with no response.
Linearizability gives such an operation a choice — it may have taken
effect at any point after its invocation, or never.  These tests pin
that semantics through :func:`repro.core.fastcheck.check_linearizable`
on both strategies (the KV store partitions per key → compositional; a
single cell has no partition spec → monolithic):

* a pending write whose effect *is* visible must be linearizable;
* a pending write whose effect is *not* visible must be linearizable
  too (it simply never happened);
* a pending operation must not excuse an output no interleaving
  explains;
* pending operations on several keys decompose per key.
"""

from repro.core.actions import Invocation, Response
from repro.core.fastcheck import (
    COMPOSITIONAL,
    MONOLITHIC,
    check_linearizable,
)
from repro.core.traces import Trace
from repro.smr.universal import kv_cell_adt, kv_get, kv_put, kv_store_adt


def inv(client, payload):
    return Invocation(client, 1, payload)


def res(client, payload, output):
    return Response(client, 1, payload, ("value", output))


class TestPendingKVStore:
    """The compositional path (the KV store carries a partition spec)."""

    def test_pending_write_whose_effect_is_visible(self):
        # c1's put(x, 1) never returned, but c2 reads 1: the pending op
        # must be linearized before the read.
        trace = Trace(
            [
                inv("c1", kv_put("x", 1)),
                inv("c2", kv_get("x")),
                res("c2", kv_get("x"), 1),
            ]
        )
        report = check_linearizable(trace, kv_store_adt())
        assert report.ok
        assert report.strategy == COMPOSITIONAL

    def test_pending_write_whose_effect_never_happened(self):
        # Same pending put, but the read sees the key absent: legal —
        # the timed-out op simply did not (yet) take effect.
        trace = Trace(
            [
                inv("c1", kv_put("x", 1)),
                inv("c2", kv_get("x")),
                res("c2", kv_get("x"), None),
            ]
        )
        report = check_linearizable(trace, kv_store_adt())
        assert report.ok

    def test_pending_op_cannot_excuse_an_unexplained_read(self):
        # No interleaving of {put(x,1) pending} explains reading 2.
        trace = Trace(
            [
                inv("c1", kv_put("x", 1)),
                inv("c2", kv_get("x")),
                res("c2", kv_get("x"), 2),
            ]
        )
        report = check_linearizable(trace, kv_store_adt())
        assert not report.ok

    def test_pending_read_is_always_harmless(self):
        trace = Trace(
            [
                inv("c1", kv_put("x", 1)),
                res("c1", kv_put("x", 1), None),
                inv("c2", kv_get("x")),
            ]
        )
        assert check_linearizable(trace, kv_store_adt()).ok

    def test_pending_ops_decompose_per_key(self):
        # One pending op per key; each partition carries its own.
        trace = Trace(
            [
                inv("c1", kv_put("x", 1)),
                inv("c2", kv_put("y", 2)),
                inv("c3", kv_get("x")),
                res("c3", kv_get("x"), 1),
                inv("c4", kv_get("y")),
                res("c4", kv_get("y"), None),
            ]
        )
        report = check_linearizable(trace, kv_store_adt())
        assert report.ok
        assert report.strategy == COMPOSITIONAL
        assert {key for key, _ in report.parts} == {"x", "y"}

    def test_pending_then_poisoned_client_issues_nothing_else(self):
        # The recording discipline: after a pending op the client stops.
        # A history where the same client has TWO open invocations is
        # ill-formed and must be rejected, not linearized.
        trace = Trace(
            [
                inv("c1", kv_put("x", 1)),
                inv("c1", kv_put("x", 2)),
            ]
        )
        report = check_linearizable(trace, kv_store_adt())
        assert not report.ok

    def test_visible_and_invisible_pending_mix(self):
        # Two pending writes to one key; the reader sees one of them.
        trace = Trace(
            [
                inv("c1", kv_put("x", 1)),
                inv("c2", kv_put("x", 2)),
                inv("c3", kv_get("x")),
                res("c3", kv_get("x"), 2),
            ]
        )
        assert check_linearizable(trace, kv_store_adt()).ok


class TestPendingMonolithic:
    """The same semantics on the monolithic engine (no partition spec)."""

    def test_pending_write_visible(self):
        trace = Trace(
            [
                inv("c1", ("put", "x", 1)),
                inv("c2", ("get", "x")),
                res("c2", ("get", "x"), 1),
            ]
        )
        report = check_linearizable(trace, kv_cell_adt("x"))
        assert report.ok
        assert report.strategy == MONOLITHIC

    def test_pending_write_invisible(self):
        trace = Trace(
            [
                inv("c1", ("put", "x", 1)),
                inv("c2", ("get", "x")),
                res("c2", ("get", "x"), None),
            ]
        )
        report = check_linearizable(trace, kv_cell_adt("x"))
        assert report.ok
        assert report.strategy == MONOLITHIC

    def test_unexplained_output_still_fails(self):
        trace = Trace(
            [
                inv("c1", ("put", "x", 1)),
                inv("c2", ("get", "x")),
                res("c2", ("get", "x"), 3),
            ]
        )
        assert not check_linearizable(trace, kv_cell_adt("x")).ok
