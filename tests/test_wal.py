"""Unit tests of the write-ahead log (`repro.net.wal`).

The WAL is the stable storage of the TCP runtime: everything here
exercises the crash cases the runtime's recovery depends on — a clean
replay, torn tails of every flavour (short header, short body, corrupt
checksum), the snapshot-compaction invariant that snapshot + tail
replays to the same fold as the full history, and the group-commit
contract: one fsync covers a tick's appends, no callback fires before
the fsync that covers its record, and a crash mid-group loses a suffix
of the group — replay always recovers a prefix, never a hole.
"""

import asyncio
import os
import struct

import pytest

from repro.net.faultfs import FaultyFS
from repro.net.wal import (
    DEFAULT_COMPACT_THRESHOLD,
    NodeWAL,
    RecoveredState,
    WALCorruptionError,
    WriteAheadLog,
)


def log_bytes(wal_dir):
    with open(os.path.join(str(wal_dir), "wal.log"), "rb") as handle:
        return handle.read()


class TestWriteAheadLog:
    def test_first_boot_is_empty_and_clean(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.records == []
        assert wal.snapshot is None
        assert not wal.torn_tail
        wal.close()
        assert wal.closed

    def test_append_then_replay_round_trips_tuples(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        values = [
            ("acc", 0, (1, 1, ("put", "x", 5, ("seq", ("c0", 1))))),
            ("qs", 3, ("get", "y", ("seq", ("c1", 2)))),
            ("dec", 0, None),
        ]
        for value in values:
            wal.append(value)
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        # Tuples survive the JSON trip exactly — the codec's whole point.
        assert reopened.records == values
        assert not reopened.torn_tail
        reopened.close()

    def test_torn_final_record_is_truncated_and_reported(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(("dec", 0, "keep-me"))
        wal.append(("dec", 1, "the-crash-eats-me"))
        wal.close()
        # Tear the last record mid-body, as a crash mid-write would.
        data = log_bytes(tmp_path)
        with open(os.path.join(str(tmp_path), "wal.log"), "wb") as handle:
            handle.write(data[:-4])
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.records == [("dec", 0, "keep-me")]
        assert reopened.torn_tail
        # The tear was truncated away: appends continue on a clean log.
        reopened.append(("dec", 1, "retried"))
        reopened.close()
        final = WriteAheadLog(str(tmp_path))
        assert final.records == [("dec", 0, "keep-me"), ("dec", 1, "retried")]
        assert not final.torn_tail
        final.close()

    def test_torn_header_is_tolerated(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(("dec", 0, "keep-me"))
        wal.close()
        with open(os.path.join(str(tmp_path), "wal.log"), "ab") as handle:
            handle.write(b"\x00\x00\x00")  # header needs 8 bytes
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.records == [("dec", 0, "keep-me")]
        assert reopened.torn_tail
        reopened.close()

    def test_corrupt_checksum_fail_stops(self, tmp_path):
        # A *complete* record with a bad crc32 is not a tear (a crash
        # leaves a prefix, never a full frame with wrong bytes): the
        # storage is lying, and replay must refuse to serve from it.
        wal = WriteAheadLog(str(tmp_path))
        wal.append(("dec", 0, "good"))
        wal.append(("dec", 1, "rotten"))
        wal.close()
        data = bytearray(log_bytes(tmp_path))
        data[-1] ^= 0xFF  # flip a bit inside the last record's body
        with open(os.path.join(str(tmp_path), "wal.log"), "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(WALCorruptionError):
            WriteAheadLog(str(tmp_path))

    def test_garbage_length_field_is_torn_not_fatal(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(("dec", 0, "good"))
        wal.close()
        with open(os.path.join(str(tmp_path), "wal.log"), "ab") as handle:
            handle.write(struct.pack(">II", 0xFFFFFFFF, 0) + b"junk")
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.records == [("dec", 0, "good")]
        assert reopened.torn_tail
        reopened.close()

    def test_compact_installs_snapshot_and_truncates(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(("dec", 0, "a"))
        wal.compact({"state": ("folded",)})
        assert log_bytes(tmp_path) == b""
        wal.append(("dec", 1, "tail"))
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.snapshot == {"state": ("folded",)}
        assert reopened.records == [("dec", 1, "tail")]
        reopened.close()

    def test_corrupt_snapshot_is_treated_as_absent(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.compact({"fine": 1})
        wal.append(("dec", 0, "tail"))
        wal.close()
        with open(os.path.join(str(tmp_path), "snapshot.json"), "w") as handle:
            handle.write("{ not json")
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.snapshot is None
        assert reopened.records == [("dec", 0, "tail")]
        reopened.close()


class TestNodeWAL:
    def test_fold_and_recovery(self, tmp_path):
        wal = NodeWAL(str(tmp_path))
        assert wal.recovered.empty
        wal.record_acceptor(0, (2, 2, ("put", "x", 1)))
        wal.record_quorum(1, ("get", "x"))
        wal.record_decided(0, ("put", "x", 1))
        wal.record_acceptor(0, (3, 2, ("put", "x", 1)))  # overwrite wins
        wal.close()
        reopened = NodeWAL(str(tmp_path))
        state = reopened.recovered
        assert state.acceptors == {0: (3, 2, ("put", "x", 1))}
        assert state.quorum == {1: ("get", "x")}
        assert state.decided == {0: ("put", "x", 1)}
        assert state.slots() == [0, 1]
        assert not state.empty
        assert state.records_replayed == 4
        reopened.close()

    def test_snapshot_plus_tail_equals_full_replay(self, tmp_path):
        ref_dir = tmp_path / "ref"
        snap_dir = tmp_path / "snap"
        records = [
            ("acc", s, (s, s, ("put", "k", s))) for s in range(6)
        ] + [("qs", s, ("get", "k")) for s in range(6)] + [
            ("dec", s, ("put", "k", s)) for s in range(3)
        ]
        reference = NodeWAL(str(ref_dir))
        compacted = NodeWAL(str(snap_dir), compact_threshold=5)
        for kind, slot, payload in records:
            reference.record(kind, slot, payload)
            compacted.record(kind, slot, payload)
        reference.close()
        compacted.close()
        # The compacted log really did snapshot (threshold << records).
        assert os.path.exists(os.path.join(str(snap_dir), "snapshot.json"))
        a = NodeWAL(str(ref_dir)).recovered
        b = NodeWAL(str(snap_dir)).recovered
        assert a.acceptors == b.acceptors
        assert a.quorum == b.quorum
        assert a.decided == b.decided

    def test_auto_compaction_bounds_log_length(self, tmp_path):
        wal = NodeWAL(str(tmp_path), compact_threshold=10)
        for i in range(35):
            wal.record_decided(i, ("put", "k", i))
        assert wal.wal.record_count < 10
        wal.close()
        reopened = NodeWAL(str(tmp_path))
        assert len(reopened.recovered.decided) == 35
        reopened.close()

    def test_default_threshold_matches_module_constant(self, tmp_path):
        wal = NodeWAL(str(tmp_path))
        assert wal.compact_threshold == DEFAULT_COMPACT_THRESHOLD
        wal.close()
        assert wal.closed

    def test_recovered_is_a_frozen_copy(self, tmp_path):
        wal = NodeWAL(str(tmp_path))
        wal.record_decided(0, "v")
        # .state moves with new records; .recovered stays at open time.
        assert wal.recovered.decided == {}
        assert wal.state.decided == {0: "v"}
        wal.close()

    def test_torn_tail_surfaces_through_recovered_state(self, tmp_path):
        wal = NodeWAL(str(tmp_path))
        wal.record_decided(0, "keep")
        wal.record_decided(1, "torn")
        wal.close()
        path = os.path.join(str(tmp_path), "wal.log")
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[:-2])
        reopened = NodeWAL(str(tmp_path))
        assert reopened.recovered.torn_tail
        assert reopened.recovered.decided == {0: "keep"}
        reopened.close()


class TestGroupCommit:
    def test_one_fsync_covers_a_ticks_appends(self, tmp_path):
        fs = FaultyFS(seed=0)
        wal = NodeWAL(str(tmp_path), fs=fs, group_commit=True)
        released = []

        async def tick():
            for slot in range(5):
                wal.record_durable(
                    "dec", slot, f"v{slot}",
                    lambda slot=slot: released.append(slot),
                )
            # persist-before-reply: nothing released before the flush
            assert released == []
            before = fs.stats["fsyncs"]
            await asyncio.sleep(0)  # run the scheduled flush
            assert released == [0, 1, 2, 3, 4]
            assert fs.stats["fsyncs"] == before + 1

        asyncio.run(tick())
        assert wal.group_flushes == 1
        assert wal.group_records == 5
        wal.close()
        reopened = NodeWAL(str(tmp_path))
        assert reopened.recovered.decided == {
            s: f"v{s}" for s in range(5)
        }
        reopened.close()

    def test_without_a_loop_degenerates_to_per_record_sync(self, tmp_path):
        wal = NodeWAL(str(tmp_path), group_commit=True)
        released = []
        wal.record_durable("dec", 0, "v", lambda: released.append(0))
        assert released == [0]  # flushed inline, no loop to defer to
        wal.close()

    def test_group_commit_off_is_record_plus_callback(self, tmp_path):
        fs = FaultyFS(seed=0)
        wal = NodeWAL(str(tmp_path), fs=fs, group_commit=False)
        released = []
        wal.record_durable("dec", 0, "v", lambda: released.append(0))
        wal.record_durable("dec", 1, "w", lambda: released.append(1))
        assert released == [0, 1]
        assert fs.stats["fsyncs"] == 2  # one per record, the seed path
        wal.close()

    def test_crash_mid_group_replays_to_prefix_never_a_hole(self, tmp_path):
        wal = NodeWAL(str(tmp_path), group_commit=True)
        released = []

        async def crash_before_flush():
            for slot in range(3):
                wal.record_durable(
                    "dec", slot, f"v{slot}",
                    lambda slot=slot: released.append(slot),
                )
            # the process dies before the scheduled flush runs: no
            # reply was released, so nothing was promised to anyone
            wal.close()

        asyncio.run(crash_before_flush())
        assert released == []
        # appends are strictly ordered: whatever writeback persisted is
        # a byte prefix — model the worst case, a tear inside record 1
        path = os.path.join(str(tmp_path), "wal.log")
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) * 2 // 5])
        reopened = NodeWAL(str(tmp_path))
        # record 0 survives, records 1 and 2 are gone together — the
        # decided map is a prefix of the group, not {0, 2}
        assert reopened.recovered.decided == {0: "v0"}
        assert reopened.recovered.torn_tail
        reopened.close()

    def test_fsync_failure_wedges_without_releasing(self, tmp_path):
        fs = FaultyFS(seed=0)
        wal = NodeWAL(str(tmp_path), fs=fs, group_commit=True)
        released = []

        async def tick():
            wal.record_durable("dec", 0, "v", lambda: released.append(0))

            def broken_fsync(handle):
                raise OSError("injected fsync failure")

            fs.fsync = broken_fsync
            await asyncio.sleep(0)

        asyncio.run(tick())
        # durability unknowable: the node fail-stops, the reply is
        # withheld forever rather than released without a real fsync
        assert released == []
        assert wal.closed


class TestRecoveredState:
    def test_slots_union_and_empty(self):
        state = RecoveredState()
        assert state.empty
        assert state.slots() == []
        state.acceptors[3] = (0, -1, None)
        state.quorum[1] = "q"
        state.decided[2] = "d"
        assert state.slots() == [1, 2, 3]
        assert not state.empty
