"""Tests for Lamport's splitter (Figure 2, lines 26-36).

Properties, checked over *every* interleaving of small scopes:

* at most one process returns True;
* in a contention-free (sequential) execution exactly one process — the
  first — returns True.
"""

from repro.sm.memory import SharedMemory
from repro.sm.scheduler import InterleavingScheduler, explore_schedules
from repro.sm.splitter import splitter


def splitter_program(client, results):
    outcome = yield from splitter(client)
    results[client] = outcome


def make_setup(clients):
    def setup():
        memory = SharedMemory()
        results = {}
        programs = {
            c: splitter_program(c, results) for c in clients
        }
        setup.results = results
        return memory, programs

    return setup


class TestSolo:
    def test_single_client_wins(self):
        setup = make_setup(["c1"])
        memory, programs = setup()
        InterleavingScheduler(memory, programs).run_sequential()
        assert setup.results == {"c1": True}


class TestSequential:
    def test_first_wins_rest_lose(self):
        setup = make_setup(["c1", "c2", "c3"])
        memory, programs = setup()
        InterleavingScheduler(memory, programs).run_sequential()
        results = setup.results
        assert results["c1"] is True
        assert results["c2"] is False
        assert results["c3"] is False


class TestExhaustiveTwoClients:
    def test_at_most_one_winner_all_interleavings(self):
        setup = make_setup(["c1", "c2"])
        explored = 0
        winners_seen = set()
        for schedule, memory in explore_schedules(setup):
            results = setup.results
            winners = [c for c, won in results.items() if won]
            assert len(winners) <= 1, schedule
            winners_seen.add(tuple(winners))
            explored += 1
        assert explored > 10
        # Some interleavings elect a winner; contention may elect none.
        assert () in winners_seen
        assert any(w for w in winners_seen if w)


class TestExhaustiveThreeClients:
    def test_at_most_one_winner(self):
        setup = make_setup(["c1", "c2", "c3"])
        for schedule, memory in explore_schedules(setup, max_schedules=3000):
            winners = [c for c, won in setup.results.items() if won]
            assert len(winners) <= 1, schedule


class TestNamespacing:
    def test_two_splitters_in_one_memory(self):
        def program(client, results):
            first = yield from splitter(client, ("s1", "X"), ("s1", "Y"))
            second = yield from splitter(client, ("s2", "X"), ("s2", "Y"))
            results[client] = (first, second)

        memory = SharedMemory()
        results = {}
        programs = {"c1": program("c1", results)}
        InterleavingScheduler(memory, programs).run_sequential()
        assert results["c1"] == (True, True)
