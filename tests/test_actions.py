"""Tests for actions and signatures (paper Sections 3, 4.2, 5.1)."""

import pytest

from repro.core.actions import (
    Invocation,
    Response,
    Switch,
    client_action_set,
    inv,
    is_invocation,
    is_response,
    is_switch,
    rename_phase,
    res,
    sig_T,
    sig_phase,
    swi,
)


class TestConstructors:
    def test_inv(self):
        a = inv("c", 1, "x")
        assert a == Invocation("c", 1, "x")
        assert is_invocation(a) and not is_response(a) and not is_switch(a)

    def test_res(self):
        a = res("c", 1, "x", "out")
        assert a == Response("c", 1, "x", "out")
        assert is_response(a)

    def test_swi(self):
        a = swi("c", 2, "x", "v")
        assert a == Switch("c", 2, "x", "v")
        assert is_switch(a)

    def test_actions_are_hashable_and_frozen(self):
        a = inv("c", 1, "x")
        assert hash(a) == hash(inv("c", 1, "x"))
        with pytest.raises(Exception):
            a.client = "d"

    def test_reprs_follow_paper_notation(self):
        assert repr(inv("c", 1, "x")) == "inv('c', 1, 'x')"
        assert repr(res("c", 1, "x", "o")) == "res('c', 1, 'x', 'o')"
        assert repr(swi("c", 2, "x", "v")) == "swi('c', 2, 'x', 'v')"


class TestSigT:
    def test_invocations_are_inputs(self):
        sig = sig_T()
        assert sig.is_input(inv("c", 1, "x"))
        assert not sig.is_output(inv("c", 1, "x"))

    def test_responses_are_outputs(self):
        sig = sig_T()
        assert sig.is_output(res("c", 1, "x", "o"))
        assert not sig.is_input(res("c", 1, "x", "o"))

    def test_switches_excluded(self):
        sig = sig_T()
        assert not sig.contains(swi("c", 2, "x", "v"))

    def test_payload_validation(self):
        sig = sig_T(valid_input=lambda i: i == "ok")
        assert sig.is_input(inv("c", 1, "ok"))
        assert not sig.is_input(inv("c", 1, "bad"))

    def test_contains_and_in(self):
        sig = sig_T()
        assert inv("c", 1, "x") in sig


class TestSigPhase:
    def test_requires_m_lt_n(self):
        with pytest.raises(ValueError):
            sig_phase(2, 2)
        with pytest.raises(ValueError):
            sig_phase(3, 1)

    def test_owned_invocations(self):
        sig = sig_phase(1, 3)
        assert sig.is_input(inv("c", 1, "x"))
        assert sig.is_input(inv("c", 2, "x"))
        assert not sig.is_input(inv("c", 3, "x"))  # next phase's business

    def test_owned_responses(self):
        sig = sig_phase(1, 3)
        assert sig.is_output(res("c", 1, "x", "o"))
        assert sig.is_output(res("c", 2, "x", "o"))
        assert not sig.is_output(res("c", 3, "x", "o"))

    def test_init_switch_is_input(self):
        sig = sig_phase(2, 3)
        assert sig.is_input(swi("c", 2, "x", "v"))
        assert not sig.is_output(swi("c", 2, "x", "v"))

    def test_abort_switch_is_output(self):
        sig = sig_phase(1, 2)
        assert sig.is_output(swi("c", 2, "x", "v"))
        assert not sig.is_input(swi("c", 2, "x", "v"))

    def test_intermediate_switch_is_output_of_composed_phase(self):
        sig = sig_phase(1, 3)
        assert sig.is_output(swi("c", 2, "x", "v"))

    def test_adjacent_signatures_have_disjoint_outputs(self):
        first = sig_phase(1, 2)
        second = sig_phase(2, 3)
        probes = [
            inv("c", 1, "x"),
            inv("c", 2, "x"),
            res("c", 1, "x", "o"),
            res("c", 2, "x", "o"),
            swi("c", 2, "x", "v"),
            swi("c", 3, "x", "v"),
        ]
        for action in probes:
            assert not (first.is_output(action) and second.is_output(action))

    def test_shared_switch_connects_phases(self):
        # The abort of (1,2) is the init of (2,3).
        action = swi("c", 2, "x", "v")
        assert sig_phase(1, 2).is_output(action)
        assert sig_phase(2, 3).is_input(action)


class TestClientActionSet:
    def test_keeps_own_actions(self):
        member = client_action_set("c", 1, 3)
        assert member(inv("c", 1, "x"))
        assert member(res("c", 2, "x", "o"))
        assert member(swi("c", 1, "x", "v"))
        assert member(swi("c", 3, "x", "v"))

    def test_drops_other_clients(self):
        member = client_action_set("c", 1, 3)
        assert not member(inv("d", 1, "x"))

    def test_drops_intermediate_switches(self):
        member = client_action_set("c", 1, 3)
        assert not member(swi("c", 2, "x", "v"))

    def test_drops_out_of_range_tags(self):
        member = client_action_set("c", 2, 4)
        assert not member(inv("c", 1, "x"))
        assert not member(inv("c", 4, "x"))  # tag n belongs to the next phase
        assert member(inv("c", 3, "x"))


class TestRenamePhase:
    def test_rename_invocation(self):
        assert rename_phase(inv("c", 1, "x"), lambda k: k + 2) == inv(
            "c", 3, "x"
        )

    def test_rename_response(self):
        assert rename_phase(res("c", 1, "x", "o"), lambda k: k + 1) == res(
            "c", 2, "x", "o"
        )

    def test_rename_switch(self):
        assert rename_phase(swi("c", 2, "x", "v"), lambda k: k * 2) == swi(
            "c", 4, "x", "v"
        )

    def test_rejects_non_action(self):
        with pytest.raises(TypeError):
            rename_phase("nope", lambda k: k)
