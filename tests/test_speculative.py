"""Tests for speculative linearizability (paper Section 5, Defs 16-36)."""

import pytest

from repro.core.actions import inv, res, swi
from repro.core.adt import consensus_adt, decide, propose
from repro.core.multisets import Multiset
from repro.core.speculative import (
    RInit,
    consensus_rinit,
    enumerate_interpretations,
    initially_valid_inputs,
    is_interpretation,
    is_speculatively_linearizable,
    singleton_rinit,
    speculatively_linearize,
    valid_inputs,
)
from repro.core.traces import Trace

P, D = propose, decide
CONS = consensus_adt()
RIN = consensus_rinit(["v1", "v2", "v3"], max_extra=1)


class TestRInit:
    def test_consensus_interpretations_start_with_value(self):
        for history in RIN.interpretations("v1"):
            assert history[0] == P("v1")

    def test_consensus_value_of_inverse(self):
        # r_init^-1 is a total onto function keyed by the first proposal.
        for history in RIN.interpretations("v2"):
            assert RIN.value_of(history) == "v2"

    def test_value_of_rejects_empty(self):
        with pytest.raises(ValueError):
            RIN.value_of(())

    def test_singleton_rinit_identity(self):
        rin = singleton_rinit()
        assert rin.interpretations(("a", "b")) == ((("a", "b")),)
        assert rin.value_of(("a", "b")) == ("a", "b")

    def test_max_extra_controls_candidate_count(self):
        small = consensus_rinit(["a", "b"], max_extra=0)
        large = consensus_rinit(["a", "b"], max_extra=2)
        assert len(small.interpretations("a")) < len(
            large.interpretations("a")
        )

    def test_admissible_filter_applies(self):
        rin = RInit(
            interpretations=lambda v: ((P(v),), (P(v), P("x"))),
            value_of=lambda h: h[0][1],
            admissible=lambda action, h: len(h) == 1,
        )
        action = swi("c", 2, P("y"), "v")
        assert rin.interpretations_for(action) == ((P("v"),),)


class TestInterpretations:
    def test_is_interpretation(self):
        t = Trace([inv("c", 1, P("v1")), swi("c", 2, P("v1"), "v1")])
        good = {1: (P("v1"),)}
        bad = {1: (P("v2"),)}
        assert is_interpretation(t, 2, good, RIN)
        assert not is_interpretation(t, 2, bad, RIN)

    def test_is_interpretation_requires_all_indices(self):
        t = Trace([inv("c", 1, P("v1")), swi("c", 2, P("v1"), "v1")])
        assert not is_interpretation(t, 2, {}, RIN)

    def test_enumerate_no_switches(self):
        t = Trace([inv("c", 1, P("v1"))])
        assert list(enumerate_interpretations(t, 2, RIN)) == [{}]

    def test_enumerate_product(self):
        t = Trace(
            [
                swi("a", 2, P("v2"), "v1"),
                swi("b", 2, P("v3"), "v1"),
            ]
        )
        interps = list(enumerate_interpretations(t, 2, RIN))
        per_action = len(RIN.interpretations("v1"))
        assert len(interps) == per_action ** 2
        for f in interps:
            assert set(f) == {0, 1}


class TestValidInputs:
    def test_ivi_empty_before_switches(self):
        t = Trace([swi("c", 2, P("v2"), "v1")])
        assert initially_valid_inputs(t, 2, {0: (P("v1"),)}, 0) == Multiset()

    def test_ivi_additive_pending_input(self):
        # The carried pending input adds to the history's budget even when
        # the values coincide (see the Definition 25 reading note).
        t = Trace([swi("c", 2, P("v1"), "v1")])
        finit = {0: (P("v1"),)}
        ivi = initially_valid_inputs(t, 2, finit, 1)
        assert ivi.count(P("v1")) == 2

    def test_ivi_max_across_switches(self):
        # Two switches interpreting the same shared prefix do not double
        # count it.
        t = Trace(
            [
                swi("a", 2, P("v2"), "v1"),
                swi("b", 2, P("v3"), "v1"),
            ]
        )
        finit = {0: (P("v1"),), 1: (P("v1"),)}
        ivi = initially_valid_inputs(t, 2, finit, 2)
        assert ivi.count(P("v1")) == 1
        assert ivi.count(P("v2")) == 1
        assert ivi.count(P("v3")) == 1

    def test_vi_adds_phase_invocations(self):
        t = Trace(
            [
                swi("a", 2, P("v2"), "v1"),
                inv("b", 2, P("v3")),
            ]
        )
        finit = {0: (P("v1"),)}
        vi = valid_inputs(t, 2, finit, 2)
        assert vi.count(P("v3")) == 1
        assert vi.count(P("v1")) == 1


class TestFirstPhase:
    def test_decide_then_switch_same_value(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                swi("c2", 2, P("v2"), "v1"),
            ]
        )
        assert is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    def test_switch_conflicting_with_decision_rejected(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                swi("c2", 2, P("v2"), "v2"),
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    def test_all_switch_no_decisions(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                swi("c1", 2, P("v1"), "v1"),
                swi("c2", 2, P("v2"), "v2"),
            ]
        )
        assert is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    def test_self_switch_with_own_value(self):
        t = Trace(
            [
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v2"),
            ]
        )
        assert is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    def test_switch_with_unproposed_value_rejected(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                swi("c1", 2, P("v1"), "v3"),
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    def test_plain_linearizability_still_required(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v2")),
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    def test_first_phase_rejects_init_actions(self):
        t = Trace([swi("c", 1, P("v1"), "v1")])
        assert not is_speculatively_linearizable(t, 1, 2, CONS, RIN)


class TestSecondPhase:
    def test_uniform_switch_values(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                swi("c2", 2, P("v3"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
                res("c2", 2, P("v3"), D("v1")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, CONS, RIN)

    def test_differing_switch_values(self):
        # Different switch values: lcp of init histories is empty, so any
        # submitted switch value may win.
        t = Trace(
            [
                swi("c1", 2, P("v1"), "v1"),
                swi("c2", 2, P("v2"), "v2"),
                res("c1", 2, P("v1"), D("v2")),
                res("c2", 2, P("v2"), D("v2")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, CONS, RIN)

    def test_decision_must_match_uniform_switch_value(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                swi("c2", 2, P("v3"), "v1"),
                res("c1", 2, P("v2"), D("v2")),
                res("c2", 2, P("v3"), D("v2")),
            ]
        )
        assert not is_speculatively_linearizable(t, 2, 3, CONS, RIN)

    def test_disagreeing_decisions_rejected(self):
        t = Trace(
            [
                swi("c1", 2, P("v1"), "v1"),
                swi("c2", 2, P("v2"), "v2"),
                res("c1", 2, P("v1"), D("v1")),
                res("c2", 2, P("v2"), D("v2")),
            ]
        )
        assert not is_speculatively_linearizable(t, 2, 3, CONS, RIN)

    def test_second_phase_can_abort_too(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                swi("c1", 3, P("v2"), "v1"),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, CONS, RIN)

    def test_abort_value_must_extend_init_prefix(self):
        # Aborting with a value unrelated to the (uniform) init prefix
        # violates Init Order.
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                swi("c1", 3, P("v2"), "v3"),
            ]
        )
        assert not is_speculatively_linearizable(t, 2, 3, CONS, RIN)

    def test_invocations_after_switch_served(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
                inv("c1", 2, P("v3")),
                res("c1", 2, P("v3"), D("v1")),
            ]
        )
        assert is_speculatively_linearizable(t, 2, 3, CONS, RIN)


class TestAbortOrder:
    def test_commit_then_conflicting_abort_rejected(self):
        # c1 decides v1; c2 aborts with a value whose every interpretation
        # starts with v2 — the commit history cannot prefix the abort
        # history.
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                swi("c2", 2, P("v2"), "v2"),
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    def test_abort_then_commit_still_constrained(self):
        # Abort Order is direction-free: a commit after an abort must
        # still be a prefix of the abort history.
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v2"),
                res("c1", 1, P("v1"), D("v1")),
            ]
        )
        assert not is_speculatively_linearizable(t, 1, 2, CONS, RIN)


class TestResults:
    def test_result_reports_failing_interpretation(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v2")),
            ]
        )
        result = speculatively_linearize(t, 2, 3, CONS, RIN)
        assert not result.ok
        assert result.failing_finit is not None

    def test_result_carries_witnesses(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
            ]
        )
        result = speculatively_linearize(t, 2, 3, CONS, RIN)
        assert result.ok
        assert len(result.witnesses) == len(
            list(enumerate_interpretations(t, 2, RIN))
        )
        for witness in result.witnesses:
            assert 1 in witness.commit

    def test_malformed_trace(self):
        t = Trace([res("c1", 2, P("v2"), D("v1"))])
        result = speculatively_linearize(t, 2, 3, CONS, RIN)
        assert not result.ok and "well-formed" in result.reason

    def test_empty_trace_is_speculatively_linearizable(self):
        assert is_speculatively_linearizable(Trace(), 1, 2, CONS, RIN)
        assert is_speculatively_linearizable(Trace(), 2, 3, CONS, RIN)


class TestInterpretationSampling:
    """The universal quantifier can be sampled for large traces; the
    result must then say so."""

    def _big_trace(self, n_inits=6):
        actions = []
        for i in range(n_inits):
            actions.append(swi(f"c{i}", 2, P(f"v{i % 3 + 1}"), "v1"))
        for i in range(n_inits):
            actions.append(
                res(f"c{i}", 2, P(f"v{i % 3 + 1}"), D("v1"))
            )
        return Trace(actions)

    def test_full_product_is_large(self):
        from repro.core.speculative import count_interpretations

        t = self._big_trace()
        assert count_interpretations(t, 2, RIN) > 1000

    def test_sampled_check_is_marked_non_exhaustive(self):
        t = self._big_trace()
        result = speculatively_linearize(
            t, 2, 3, CONS, RIN, max_interpretations=25
        )
        assert result.ok
        assert not result.exhaustive
        assert len(result.witnesses) <= 25

    def test_small_trace_stays_exhaustive_under_cap(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
            ]
        )
        result = speculatively_linearize(
            t, 2, 3, CONS, RIN, max_interpretations=1000
        )
        assert result.ok and result.exhaustive

    def test_sampling_is_deterministic(self):
        from repro.core.speculative import enumerate_interpretations

        t = self._big_trace()
        a = [
            tuple(sorted(f.items()))
            for f in enumerate_interpretations(
                t, 2, RIN, max_interpretations=10, sample_seed=3
            )
        ]
        b = [
            tuple(sorted(f.items()))
            for f in enumerate_interpretations(
                t, 2, RIN, max_interpretations=10, sample_seed=3
            )
        ]
        assert a == b

    def test_sampling_still_catches_bad_traces(self):
        actions = [
            swi(f"c{i}", 2, P(f"v{i % 3 + 1}"), "v1") for i in range(6)
        ]
        actions.append(res("c0", 2, P("v1"), D("v3")))  # wrong decision
        t = Trace(actions)
        result = speculatively_linearize(
            t, 2, 3, CONS, RIN, max_interpretations=10
        )
        assert not result.ok
