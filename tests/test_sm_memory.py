"""Tests for the shared-memory substrate (memory + scheduler)."""

import random

import pytest

from repro.sm.memory import SharedMemory
from repro.sm.scheduler import (
    InterleavingScheduler,
    count_schedules,
    explore_schedules,
)


class TestSharedMemory:
    def test_initially_bottom(self):
        mem = SharedMemory()
        assert mem.read("V") is None

    def test_write_read(self):
        mem = SharedMemory()
        mem.write("V", 7)
        assert mem.read("V") == 7

    def test_cas_success_returns_new(self):
        mem = SharedMemory()
        assert mem.cas("D", None, "x") == "x"
        assert mem.peek("D") == "x"

    def test_cas_failure_returns_current(self):
        mem = SharedMemory()
        mem.write("D", "x")
        assert mem.cas("D", None, "y") == "x"
        assert mem.peek("D") == "x"

    def test_counters(self):
        mem = SharedMemory()
        mem.read("a")
        mem.write("a", 1)
        mem.cas("a", 1, 2)
        assert mem.counts.snapshot() == (1, 1, 1)
        assert mem.counts.register_ops == 2
        assert mem.counts.total == 3

    def test_peek_does_not_count(self):
        mem = SharedMemory()
        mem.peek("a")
        assert mem.counts.total == 0

    def test_execute_dispatch(self):
        mem = SharedMemory()
        assert mem.execute(("write", "r", 5)) is None
        assert mem.execute(("read", "r")) == 5
        assert mem.execute(("cas", "r", 5, 6)) == 6
        with pytest.raises(ValueError):
            mem.execute(("bogus",))


def writer(name, value):
    yield ("write", "R", value)
    result = yield ("read", "R")
    writer.results[name] = result


def make_two_writers():
    memory = SharedMemory()
    writer.results = {}
    programs = {
        "t1": writer("t1", 1),
        "t2": writer("t2", 2),
    }
    return memory, programs


class TestScheduler:
    def test_sequential_mode(self):
        memory, programs = make_two_writers()
        scheduler = InterleavingScheduler(memory, programs)
        steps = scheduler.run_sequential()
        # Thread t1 fully precedes t2.
        assert steps == ["t1", "t1", "t2", "t2"]
        assert writer.results == {"t1": 1, "t2": 2}

    def test_random_mode_deterministic_per_seed(self):
        def run(seed):
            memory, programs = make_two_writers()
            scheduler = InterleavingScheduler(memory, programs)
            return scheduler.run_random(random.Random(seed))

        assert run(5) == run(5)

    def test_explicit_schedule(self):
        memory, programs = make_two_writers()
        scheduler = InterleavingScheduler(memory, programs)
        done = scheduler.run_schedule(["t1", "t2", "t1", "t2"])
        assert done
        # t2's write lands after t1's, both reads see 2.
        assert writer.results == {"t1": 2, "t2": 2}

    def test_incomplete_schedule(self):
        memory, programs = make_two_writers()
        scheduler = InterleavingScheduler(memory, programs)
        assert not scheduler.run_schedule(["t1"])
        assert scheduler.runnable == ("t1", "t2")

    def test_step_on_finished_thread_rejected(self):
        memory, programs = make_two_writers()
        scheduler = InterleavingScheduler(memory, programs)
        scheduler.run_schedule(["t1", "t1"])
        with pytest.raises(ValueError):
            scheduler.step("t1")

    def test_round_robin(self):
        memory, programs = make_two_writers()
        scheduler = InterleavingScheduler(memory, programs)
        steps = scheduler.run_round_robin()
        assert steps == ["t1", "t2", "t1", "t2"]


class TestExploration:
    def test_interleaving_count_matches_binomial(self):
        # Two threads of 2 steps each: C(4,2) = 6 interleavings.
        assert count_schedules(make_two_writers) == 6

    def test_all_schedules_complete(self):
        for schedule, memory in explore_schedules(make_two_writers):
            assert len(schedule) == 4
            assert memory.counts.total == 4

    def test_max_schedules_cap(self):
        assert count_schedules(make_two_writers, max_schedules=3) == 3

    def test_exploration_covers_distinct_outcomes(self):
        finals = set()
        for schedule, memory in explore_schedules(make_two_writers):
            finals.add(memory.peek("R"))
        assert finals == {1, 2}
