"""Tests of the live-cluster nemesis campaign (`repro.faults.netcampaign`).

The schedule-level properties (determinism, majority preservation,
shrinker hooks) are pure and fast; the campaign-level tests boot real
localhost clusters, so they use small directed schedules to stay in
CI-smoke range.  The amnesiac test is the canary that justifies the
whole layer: disabling one replica's WAL must surface as a checker
violation with a shrunk reproducer, not as silence.
"""

from repro.faults.netcampaign import (
    KillNode,
    NET_ACTION_CLASSES,
    NetLossBurst,
    NetPartition,
    NetSchedule,
    RestartNode,
    random_net_schedule,
    run_net_campaign,
)

SILENT = lambda line: None  # noqa: E731

#: the directed kill/restart pair of the durability canary: traffic is
#: still flowing at the kill, and the restart leaves the tail of the
#: horizon to the late reader that probes the recovered prefix
CANARY = lambda seed: NetSchedule(  # noqa: E731
    seed=seed,
    actions=(KillNode(at=0.7, node=2), RestartNode(at=1.2, node=2)),
    horizon=3.0,
)


class TestScheduleGeneration:
    def test_deterministic_in_seed(self):
        a = random_net_schedule(seed=7)
        b = random_net_schedule(seed=7)
        assert a == b
        assert a.describe() == b.describe()
        assert random_net_schedule(seed=8) != a

    def test_kills_are_paired_with_later_restarts(self):
        for seed in range(20):
            schedule = random_net_schedule(seed=seed, max_kills=2)
            kills = [a for a in schedule.actions if isinstance(a, KillNode)]
            restarts = {
                a.node: a.at
                for a in schedule.actions
                if isinstance(a, RestartNode)
            }
            for kill in kills:
                assert kill.node in restarts
                assert restarts[kill.node] > kill.at

    def test_majority_preserving_bounds_concurrent_downtime(self):
        for seed in range(30):
            schedule = random_net_schedule(
                seed=seed, n_servers=3, max_kills=2
            )
            windows = []
            for action in schedule.actions:
                if isinstance(action, KillNode):
                    windows.append([action.at, None, action.node])
                elif isinstance(action, RestartNode):
                    for window in windows:
                        if window[2] == action.node and window[1] is None:
                            window[1] = action.at
            # At every kill instant, at most a minority (1 of 3) down.
            for start, end, _ in windows:
                concurrent = sum(
                    1
                    for s, e, _ in windows
                    if s is not None and e is not None and s <= start < e
                )
                assert concurrent <= 1

    def test_must_restart_forces_the_amnesiac_pair(self):
        for seed in range(10):
            schedule = random_net_schedule(seed=seed, must_restart=1)
            assert any(
                isinstance(a, KillNode) and a.node == 1
                for a in schedule.actions
            )
            assert any(
                isinstance(a, RestartNode) and a.node == 1
                for a in schedule.actions
            )

    def test_actions_sorted_and_nonempty(self):
        for seed in range(10):
            schedule = random_net_schedule(seed=seed)
            assert schedule.actions
            ats = [a.at for a in schedule.actions]
            assert ats == sorted(ats)

    def test_subset_preserves_metadata(self):
        schedule = NetSchedule(
            seed=3,
            actions=(
                KillNode(at=0.5, node=1),
                RestartNode(at=1.0, node=1),
                NetLossBurst(at=0.2),
                NetPartition(at=0.4),
            ),
            horizon=5.0,
            majority_preserving=False,
        )
        sub = schedule.subset([0, 2])
        assert sub.seed == 3
        assert sub.horizon == 5.0
        assert sub.majority_preserving is False
        assert sub.actions == (KillNode(at=0.5, node=1), NetLossBurst(at=0.2))
        assert schedule.subset(range(4)) == schedule

    def test_describe_names_every_action_class(self):
        for cls in NET_ACTION_CLASSES:
            assert cls.__name__ in cls(at=0.1).describe()


class TestLiveCampaign:
    def test_healthy_campaign_is_linearizable(self):
        report = run_net_campaign(
            schedules=[CANARY(0)],
            clients=2,
            ops_per_client=5,
            emit=SILENT,
        )
        assert report.all_linearizable
        (run,) = report.runs
        assert run.ok
        assert run.kills == 1
        assert run.restarts == 1
        assert run.late_readers == 1
        assert run.committed > 0

    def test_artifacts_are_written(self, tmp_path):
        run_net_campaign(
            schedules=[CANARY(0)],
            clients=2,
            ops_per_client=4,
            artifact_dir=str(tmp_path),
            emit=SILENT,
        )
        assert (tmp_path / "net-run-0.json").exists()

    def test_amnesiac_node_is_caught_and_shrunk(self):
        """The durability canary: one WAL-disabled replica must turn the
        same kill/restart campaign into a checker violation.

        The fork is timing-dependent (the restarted blank node must
        steal a fast-decided slot from a late reader before the
        survivors' backup rounds protect it), so a few seeds are tried;
        across them the campaign must catch the bug at least once.
        """
        report = None
        for seed in (0, 2, 1, 3, 4):
            report = run_net_campaign(
                schedules=[CANARY(seed)],
                amnesiac=2,
                clients=3,
                ops_per_client=6,
                emit=SILENT,
            )
            if report.violations:
                break
        assert report is not None and report.violations, (
            "the amnesiac node was never caught: the campaign cannot "
            "see the durability bug it exists to detect"
        )
        violation = report.violations[0]
        assert violation.result.violation
        assert violation.result.amnesiac == 2
        assert "no linearization" in violation.result.reason
        # The shrunk reproducer still contains the amnesiac's restart
        # (without it the node never forgets anything mid-run).
        assert any(
            isinstance(a, RestartNode) and a.node == 2
            for a in violation.shrunk.actions
        )
        assert len(violation.shrunk.actions) <= 2
        assert "violation" in violation.report()

    def test_live_monitor_catches_the_amnesiac_during_the_run(
        self, tmp_path
    ):
        """With ``monitor=True`` the same canary must be caught *while
        the run is in flight* — the online verdict flips, the drivers
        stop, and the shrunken witness lands as an artifact — without
        waiting for the post-hoc check.  Timing-dependent like the
        post-hoc canary, so a few seeds are tried."""
        caught = []
        for seed in (0, 2, 1, 3, 4):
            report = run_net_campaign(
                schedules=[CANARY(seed)],
                amnesiac=2,
                clients=3,
                ops_per_client=6,
                shrink=False,
                monitor=True,
                artifact_dir=str(tmp_path),
                emit=SILENT,
            )
            assert all(r.monitored for r in report.runs)
            caught = [
                r for r in report.runs if r.monitor_verdict == "violation"
            ]
            if caught:
                break
        assert caught, (
            "the live monitor never caught the amnesiac node: fail-fast "
            "monitoring cannot see the durability bug it exists to catch"
        )
        run = caught[0]
        # the online and post-hoc verdicts agree on the same history
        assert run.violation
        assert "frontier emptied" in run.monitor_reason
        assert run.monitor_witness is not None
        assert run.monitor_events > 0
        assert f"monitor={run.monitor_verdict}" in run.line()
        witness = (
            tmp_path / f"net-monitor-witness-{run.schedule.seed}.json"
        )
        assert witness.exists()
