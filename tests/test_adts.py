"""Tests for the ADT library (paper Section 4.1, Figure 1, Section 6)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.adt import (
    EMPTY,
    apply_adt_to_universal_output,
    cas,
    cas_read,
    cas_register_adt,
    consensus_adt,
    counter_adt,
    counter_read,
    decide,
    decided_value,
    deq,
    enq,
    inc,
    pop,
    propose,
    proposed_value,
    push,
    queue_adt,
    reg_read,
    reg_write,
    register_adt,
    set_add,
    set_adt,
    set_contains,
    set_remove,
    stack_adt,
    universal_adt,
)


class TestConsensus:
    def test_figure_1_semantics(self):
        # f([p(v1), p(v2), ..., p(vn)]) = d(v1): first proposal wins.
        adt = consensus_adt()
        history = (propose("v1"), propose("v2"), propose("v3"))
        assert adt.output(history) == decide("v1")
        assert adt.output(history[:1]) == decide("v1")

    def test_every_position_gets_first_value(self):
        adt = consensus_adt()
        history = (propose("a"), propose("b"))
        for i in range(1, len(history) + 1):
            assert adt.output(history[:i]) == decide("a")

    def test_payload_helpers(self):
        assert proposed_value(propose("x")) == "x"
        assert decided_value(decide("y")) == "y"
        with pytest.raises(ValueError):
            proposed_value(decide("x"))
        with pytest.raises(ValueError):
            decided_value(propose("x"))

    def test_input_output_validation(self):
        adt = consensus_adt(values=["a", "b"])
        assert adt.is_input(propose("a"))
        assert not adt.is_input(propose("z"))
        assert adt.is_output(decide("b"))
        assert not adt.is_output(decide("z"))
        assert not adt.is_input(("bogus",))

    def test_unrestricted_values(self):
        adt = consensus_adt()
        assert adt.is_input(propose(42))

    def test_transition_rejects_bad_input(self):
        with pytest.raises(ValueError):
            consensus_adt().transition(None, ("bogus", 1))

    def test_empty_history_has_no_output(self):
        with pytest.raises(ValueError):
            consensus_adt().output(())

    @given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=6))
    def test_first_proposal_always_decides(self, values):
        adt = consensus_adt()
        history = tuple(propose(v) for v in values)
        assert adt.output(history) == decide(values[0])


class TestUniversal:
    def test_identity_output(self):
        adt = universal_adt()
        history = ("x", "y")
        assert adt.output(history) == history

    def test_growing_state(self):
        adt = universal_adt()
        state, out = adt.run(("a", "b", "c"))
        assert state == ("a", "b", "c")
        assert out == ("a", "b", "c")

    def test_derivation_of_other_adts(self):
        # Section 6: apply another ADT's output function to the response.
        cons = consensus_adt()
        universal = universal_adt()
        history = (propose("v1"), propose("v2"))
        response = universal.output(history)
        assert apply_adt_to_universal_output(cons, response) == decide("v1")

    def test_input_restriction(self):
        adt = universal_adt(valid_input=lambda i: i == "ok")
        assert adt.is_input("ok")
        assert not adt.is_input("nope")


class TestRegister:
    def test_read_initial(self):
        adt = register_adt()
        assert adt.output((reg_read(),)) == ("value", None)

    def test_write_then_read(self):
        adt = register_adt()
        assert adt.output((reg_write(5), reg_read())) == ("value", 5)

    def test_write_returns_ok(self):
        adt = register_adt()
        assert adt.output((reg_write(5),)) == ("ok",)

    def test_last_write_wins(self):
        adt = register_adt()
        history = (reg_write(1), reg_write(2), reg_read())
        assert adt.output(history) == ("value", 2)

    def test_initial_value(self):
        adt = register_adt(initial=7)
        assert adt.output((reg_read(),)) == ("value", 7)

    def test_validation(self):
        adt = register_adt()
        assert adt.is_input(reg_read())
        assert adt.is_input(reg_write(1))
        assert not adt.is_input(("write",))
        assert adt.is_output(("ok",))
        assert not adt.is_output(("nope", 3))


class TestQueue:
    def test_fifo_order(self):
        adt = queue_adt()
        history = (enq(1), enq(2), deq())
        assert adt.output(history) == ("value", 1)

    def test_empty_dequeue(self):
        adt = queue_adt()
        assert adt.output((deq(),)) == EMPTY

    def test_enq_returns_ok(self):
        assert queue_adt().output((enq(1),)) == ("ok",)

    def test_interleaved(self):
        adt = queue_adt()
        history = (enq(1), deq(), deq())
        assert adt.output(history) == EMPTY

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=6))
    def test_drain_order(self, values):
        adt = queue_adt()
        history = tuple(enq(v) for v in values)
        for i, expected in enumerate(values):
            history = history + (deq(),)
            # Output of the last deq follows FIFO order.
            assert adt.output(history) == ("value", expected)


class TestStack:
    def test_lifo_order(self):
        adt = stack_adt()
        assert adt.output((push(1), push(2), pop())) == ("value", 2)

    def test_empty_pop(self):
        assert stack_adt().output((pop(),)) == EMPTY

    def test_push_pop_push(self):
        adt = stack_adt()
        assert adt.output((push(1), pop(), push(2), pop())) == ("value", 2)


class TestCounter:
    def test_fetch_and_add(self):
        adt = counter_adt()
        assert adt.output((inc(),)) == ("count", 0)
        assert adt.output((inc(), inc())) == ("count", 1)

    def test_custom_amount(self):
        adt = counter_adt()
        assert adt.output((inc(5), counter_read())) == ("count", 5)

    def test_read_does_not_modify(self):
        adt = counter_adt()
        assert adt.output((counter_read(), counter_read())) == ("count", 0)

    def test_validation(self):
        adt = counter_adt()
        assert not adt.is_input(("inc", "nope"))


class TestSet:
    def test_add_reports_prior_absence(self):
        adt = set_adt()
        assert adt.output((set_add(1),)) == ("bool", False)
        assert adt.output((set_add(1), set_add(1))) == ("bool", True)

    def test_contains(self):
        adt = set_adt()
        assert adt.output((set_add(1), set_contains(1))) == ("bool", True)
        assert adt.output((set_contains(9),)) == ("bool", False)

    def test_remove(self):
        adt = set_adt()
        history = (set_add(1), set_remove(1), set_contains(1))
        assert adt.output(history) == ("bool", False)


class TestCASRegister:
    def test_successful_cas(self):
        adt = cas_register_adt()
        assert adt.output((cas(None, "w"),)) == ("value", "w")

    def test_failed_cas_returns_current(self):
        adt = cas_register_adt()
        history = (cas(None, "a"), cas(None, "b"))
        assert adt.output(history) == ("value", "a")

    def test_figure_3_race(self):
        # Two CAS(D, bottom, v) race: both see the first winner.
        adt = cas_register_adt()
        assert adt.output((cas(None, "x"), cas(None, "y"))) == ("value", "x")
        assert adt.output((cas(None, "x"), cas(None, "y"), cas_read())) == (
            "value",
            "x",
        )

    def test_read(self):
        adt = cas_register_adt(initial=3)
        assert adt.output((cas_read(),)) == ("value", 3)


class TestRunHelper:
    def test_run_empty(self):
        state, out = consensus_adt().run(())
        assert state is None and out is None

    def test_run_returns_final_state(self):
        state, out = register_adt().run((reg_write(9),))
        assert state == 9
