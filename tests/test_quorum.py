"""Tests for the Quorum speculation phase (paper §2.1)."""

import pytest

from repro.core.adt import consensus_adt
from repro.core.invariants import check_first_phase_invariants
from repro.core.speculative import consensus_rinit, is_speculatively_linearizable
from repro.mp.composed import QuorumOnly
from repro.mp.quorum import QuorumClient, QuorumServer
from repro.mp.sim import Network, Simulator

CONS = consensus_adt()


def jitter(rng):
    return rng.uniform(0.5, 1.5)


class TestServer:
    def test_first_proposal_sticks(self):
        sim = Simulator()
        net = Network(sim)
        server = net.register(QuorumServer("s"))
        replies = []

        class Probe(QuorumClient):
            def on_message(self, src, message):
                replies.append(message)

        probe = net.register(
            Probe("c", ["s"], lambda v: None, lambda v: None)
        )
        probe.send("s", ("q-propose", "v1"))
        sim.run()
        probe.send("s", ("q-propose", "v2"))
        sim.run()
        assert replies == [("q-accept", "v1"), ("q-accept", "v1")]
        assert server.accepted == "v1"


class TestFastPath:
    def test_two_message_delays(self):
        system = QuorumOnly(n_servers=3, seed=0)
        outcome = system.propose("c1", "v1", at=0.0)
        system.run()
        assert outcome.path == "fast"
        assert outcome.latency == 2.0
        assert outcome.decided_value == "v1"

    def test_sequential_proposals_all_decide_first_value(self):
        system = QuorumOnly(n_servers=3, seed=0)
        o1 = system.propose("c1", "v1", at=0.0)
        o2 = system.propose("c2", "v2", at=10.0)
        system.run()
        assert o1.decided_value == "v1"
        assert o2.decided_value == "v1"
        assert o2.path == "fast"  # identical accepts: decide, not switch

    def test_fast_path_scales_with_servers(self):
        for n in (3, 5, 7):
            system = QuorumOnly(n_servers=n, seed=0)
            outcome = system.propose("c1", "v1", at=0.0)
            system.run()
            assert outcome.latency == 2.0, n


class TestSwitching:
    def test_contention_forces_switch(self):
        # Random delays let servers receive proposals in different orders.
        switched_somewhere = False
        for seed in range(12):
            system = QuorumOnly(n_servers=3, seed=seed, delay=jitter)
            for i in range(3):
                system.propose(f"c{i}", f"v{i}", at=0.0)
            system.run()
            if any(o.switched for o in system.outcomes.values()):
                switched_somewhere = True
                for o in system.outcomes.values():
                    if o.switched:
                        # I3: the switch value was proposed.
                        assert o.switch_value in {"v0", "v1", "v2"}
        assert switched_somewhere

    def test_server_crash_forces_timeout_switch(self):
        system = QuorumOnly(n_servers=3, seed=0)
        system.crash_server(2, at=0.0)
        outcome = system.propose("c1", "v1", at=1.0)
        system.run()
        assert outcome.switched
        assert outcome.switch_value == "v1"
        # The switch happens when the timer expires.
        assert outcome.switch_time == pytest.approx(1.0 + system.quorum_timeout)

    def test_total_loss_switch_waits_for_one_accept(self):
        # All messages from server 2 lost: client times out and switches
        # with an accepted value it has seen.
        system = QuorumOnly(n_servers=2, seed=3)
        system.crash_server(1, at=0.0)
        outcome = system.propose("c1", "v1", at=0.0)
        system.run()
        assert outcome.switched
        assert outcome.switch_value == "v1"

    def test_wait_freedom_bound(self):
        # Every client decides or switches by timeout + one delay.
        for seed in range(8):
            system = QuorumOnly(n_servers=3, seed=seed, delay=jitter)
            outcomes = [
                system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(3)
            ]
            system.run()
            for o in outcomes:
                end = o.decide_time if not o.switched else o.switch_time
                assert end is not None
                assert end <= system.quorum_timeout + 1.5


class TestInvariantsAndSLin:
    @pytest.mark.parametrize("seed", range(10))
    def test_invariants_hold_under_contention(self, seed):
        system = QuorumOnly(n_servers=3, seed=seed, delay=jitter)
        for i in range(3):
            system.propose(f"c{i}", f"v{i}", at=0.0)
        system.run()
        trace = system.trace()
        for report in check_first_phase_invariants(trace, 2):
            assert report.ok, report

    @pytest.mark.parametrize("seed", range(6))
    def test_quorum_traces_are_speculatively_linearizable(self, seed):
        system = QuorumOnly(n_servers=3, seed=seed, delay=jitter)
        for i in range(2):
            system.propose(f"c{i}", f"v{i}", at=0.0)
        system.run()
        rin = consensus_rinit(["v0", "v1"], max_extra=1)
        assert is_speculatively_linearizable(
            system.trace(), 1, 2, CONS, rin
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_invariants_with_crash_and_loss(self, seed):
        system = QuorumOnly(n_servers=3, seed=seed, loss_rate=0.2)
        system.crash_server(0, at=2.0)
        for i in range(3):
            system.propose(f"c{i}", f"v{i}", at=float(i))
        system.run()
        for report in check_first_phase_invariants(system.trace(), 2):
            assert report.ok, report
