"""The documentation must not drift from the code.

Every ``repro.*`` dotted reference in docs/THEORY.md and README.md must
resolve to a real module/attribute, and every test/benchmark file named
in the docs must exist.
"""

import importlib
import os
import re

import pytest

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

DOTTED = re.compile(r"`(repro(?:\.[A-Za-z_][A-Za-z0-9_]*)+)`")
FILES = re.compile(r"`((?:tests|benchmarks|examples|docs)/[A-Za-z0-9_./-]+)`")


def doc_text(name):
    with open(os.path.join(ROOT, name)) as handle:
        return handle.read()


def resolve(dotted):
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


@pytest.mark.parametrize(
    "doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/THEORY.md",
            "docs/ALGORITHMS.md", "docs/ANALYSIS.md", "docs/ARCHITECTURE.md",
            "docs/MONITORING.md", "docs/PERFORMANCE.md", "docs/RESILIENCE.md"]
)
def test_dotted_references_resolve(doc):
    text = doc_text(doc)
    missing = []
    for match in DOTTED.finditer(text):
        dotted = match.group(1)
        if not resolve(dotted):
            missing.append(dotted)
    assert not missing, f"{doc}: unresolved references {missing}"


@pytest.mark.parametrize(
    "doc", ["README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/THEORY.md",
            "docs/ANALYSIS.md", "docs/ARCHITECTURE.md",
            "docs/MONITORING.md", "docs/PERFORMANCE.md", "docs/RESILIENCE.md"]
)
def test_referenced_files_exist(doc):
    text = doc_text(doc)
    missing = []
    for match in FILES.finditer(text):
        path = match.group(1).split("::")[0]
        if not os.path.exists(os.path.join(ROOT, path)):
            missing.append(path)
    assert not missing, f"{doc}: missing files {missing}"


def test_theory_md_symbol_references():
    """THEORY.md uses `module.symbol` shorthand inside backticks with
    explicit repro prefixes handled above; additionally check the
    `repro.core.x.y::symbol`-style entries in DESIGN.md."""
    text = doc_text("DESIGN.md")
    pattern = re.compile(r"`(repro/[A-Za-z0-9_/]+\.py)(?:::([A-Za-z_][A-Za-z0-9_]*))?`")
    missing = []
    for match in pattern.finditer(text):
        path = os.path.join(ROOT, "src", match.group(1))
        if not os.path.exists(path):
            missing.append(match.group(1))
            continue
        symbol = match.group(2)
        if symbol:
            with open(path) as handle:
                if not re.search(rf"def {symbol}|class {symbol}|{symbol} =", handle.read()):
                    missing.append(f"{match.group(1)}::{symbol}")
    assert not missing, missing
