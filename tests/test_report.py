"""Tests for the one-call verification report."""

import pytest

from repro.core.actions import inv, res, swi
from repro.core.adt import consensus_adt, decide, propose
from repro.core.report import VerificationReport, verify_phases
from repro.core.speculative import consensus_rinit
from repro.core.traces import Trace

P, D = propose, decide
CONS = consensus_adt()
RIN = consensus_rinit(["v1", "v2"], max_extra=1)


def good_trace():
    return Trace(
        [
            inv("c1", 1, P("v1")),
            inv("c2", 1, P("v2")),
            res("c1", 1, P("v1"), D("v1")),
            swi("c2", 2, P("v2"), "v1"),
            res("c2", 2, P("v2"), D("v1")),
        ]
    )


def bad_trace():
    return Trace(
        [
            inv("c1", 1, P("v1")),
            inv("c2", 1, P("v2")),
            res("c1", 1, P("v1"), D("v1")),
            res("c2", 1, P("v2"), D("v2")),  # disagreement
        ]
    )


class TestVerifyPhases:
    def test_good_trace_all_pass(self):
        report = verify_phases(good_trace(), [1, 2, 3], CONS, RIN)
        assert report.ok
        assert bool(report)
        assert report.failures() == []

    def test_bad_trace_flagged(self):
        report = verify_phases(bad_trace(), [1, 2, 3], CONS, RIN)
        assert not report.ok
        failed = {line.name for line in report.failures()}
        assert any("SLin" in name for name in failed)

    def test_invariant_lines_included_on_request(self):
        report = verify_phases(
            good_trace(), [1, 2, 3], CONS, RIN, check_invariants=True
        )
        names = {line.name for line in report.lines}
        assert any(name.startswith("I1") for name in names)
        assert any(name.startswith("I5") for name in names)
        assert report.ok

    def test_render_mentions_verdict(self):
        report = verify_phases(good_trace(), [1, 2, 3], CONS, RIN)
        text = report.render()
        assert "ALL CHECKS PASSED" in text
        assert "[PASS]" in text

    def test_render_marks_failures(self):
        report = verify_phases(bad_trace(), [1, 2, 3], CONS, RIN)
        assert "[FAIL]" in report.render()
        assert "CHECKS FAILED" in report.render()

    def test_requires_two_boundaries(self):
        with pytest.raises(ValueError):
            verify_phases(good_trace(), [1], CONS, RIN)

    def test_three_phase_boundaries(self):
        from repro.mp import ThreePhaseConsensus

        system = ThreePhaseConsensus(seed=0)
        system.network.crash_at(("sq", 1), 0.0)
        system.propose("c1", "v1", at=1.0)
        system.run()
        rinit = consensus_rinit(["v1"], max_extra=1)
        report = verify_phases(
            system.trace(), [1, 2, 3, 4], CONS, rinit
        )
        assert report.ok, report.render()
        names = [line.name for line in report.lines]
        assert "phase (3,4) is SLin" in names
        assert "Theorem 5 at split 2" in names
        assert "Theorem 5 at split 3" in names


class TestReportMechanics:
    def test_empty_report_is_ok(self):
        assert VerificationReport().ok

    def test_add_and_failures(self):
        report = VerificationReport()
        report.add("x", True)
        report.add("y", False, note="boom")
        assert not report.ok
        assert [line.name for line in report.failures()] == ["y"]


class TestReportOnSubstrates:
    @pytest.mark.parametrize("seed", range(3))
    def test_shared_memory_runs(self, seed):
        from repro.sm import run_composed

        run = run_composed(
            [("c1", "v1"), ("c2", "v2")], mode="random", seed=seed
        )
        rinit = consensus_rinit(["v1", "v2"], max_extra=1)
        report = verify_phases(
            run.trace, [1, 2, 3], CONS, rinit, check_invariants=True
        )
        assert report.ok, report.render()

    def test_message_passing_run(self):
        from repro.mp import ComposedConsensus

        def jitter(rng):
            return rng.uniform(0.5, 1.5)

        system = ComposedConsensus(n_servers=3, seed=5, delay=jitter)
        for i in range(2):
            system.propose(f"c{i}", f"v{i}", at=0.0)
        system.run()
        rinit = consensus_rinit(["v0", "v1"], max_extra=1)
        report = verify_phases(
            system.trace(), [1, 2, 3], CONS, rinit, check_invariants=True
        )
        assert report.ok, report.render()
