"""Pytest configuration: make tests/ importable as a package root."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
