"""Tests for the `python -m repro` experiment runner."""

import os
import subprocess
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))


def run_cli(*args, timeout=600):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=ROOT,
    )


def test_no_args_lists_experiments():
    result = run_cli()
    assert result.returncode == 0
    for key in ("e1", "e6", "e9", "examples"):
        assert key in result.stdout


def test_unknown_experiment_rejected():
    result = run_cli("zz")
    assert result.returncode == 1
    assert "unknown experiment" in result.stdout


def test_runs_a_selected_experiment():
    result = run_cli("f1")
    assert result.returncode == 0
    assert "Figure 1 semantics verified" in result.stdout


def test_runs_multiple_experiments():
    result = run_cli("f1", "e1")
    assert result.returncode == 0
    assert "E1: decision latency" in result.stdout
