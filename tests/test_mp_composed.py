"""End-to-end tests for the composed Quorum+Backup consensus (§2.1/2.4)."""

import pytest

from repro.core.adt import consensus_adt
from repro.core.composition import check_composition_theorem, check_theorem_2
from repro.core.invariants import (
    check_first_phase_invariants,
    check_second_phase_invariants,
)
from repro.core.linearizability import is_linearizable
from repro.core.speculative import consensus_rinit
from repro.core.traces import is_phase_wellformed, strip_phase_tags
from repro.mp.composed import ComposedConsensus

CONS = consensus_adt()


def jitter(rng):
    return rng.uniform(0.5, 1.5)


class TestFastPath:
    def test_uncontended_two_delays(self):
        system = ComposedConsensus(n_servers=3, seed=0)
        outcome = system.propose("c1", "v1", at=0.0)
        system.run()
        assert outcome.path == "fast"
        assert outcome.latency == 2.0

    def test_sequential_clients_stay_fast(self):
        system = ComposedConsensus(n_servers=3, seed=0)
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=10.0 * i) for i in range(4)
        ]
        system.run()
        assert all(o.path == "fast" for o in outcomes)
        assert {o.decided_value for o in outcomes} == {"v0"}


class TestSlowPath:
    def test_crash_falls_back_to_backup(self):
        system = ComposedConsensus(n_servers=3, seed=0)
        system.crash_server(2, at=0.0)
        outcome = system.propose("c1", "v1", at=1.0)
        system.run()
        assert outcome.path == "slow"
        assert outcome.decided_value == "v1"

    @pytest.mark.parametrize("seed", range(8))
    def test_contention_agreement(self, seed):
        system = ComposedConsensus(n_servers=3, seed=seed, delay=jitter)
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(4)
        ]
        system.run()
        decisions = {o.decided_value for o in outcomes}
        assert len(decisions) == 1
        assert decisions.pop() in {f"v{i}" for i in range(4)}

    def test_switch_value_respects_i1(self):
        # If someone decided v in Quorum, everybody switching carries v.
        for seed in range(10):
            system = ComposedConsensus(n_servers=3, seed=seed, delay=jitter)
            outcomes = [
                system.propose(f"c{i}", f"v{i}", at=0.1 * i)
                for i in range(3)
            ]
            system.run()
            fast = [o for o in outcomes if o.path == "fast"]
            slow = [o for o in outcomes if o.path == "slow"]
            if fast and slow:
                decided = fast[0].decided_value
                assert all(o.switch_value == decided for o in slow)


class TestTraceLevelProperties:
    @pytest.mark.parametrize("seed", range(6))
    def test_wellformedness_and_linearizability(self, seed):
        system = ComposedConsensus(n_servers=3, seed=seed, delay=jitter)
        for i in range(3):
            system.propose(f"c{i}", f"v{i}", at=0.0)
        system.run()
        trace = system.trace()
        assert is_phase_wellformed(trace, 1, 3)
        assert is_linearizable(strip_phase_tags(trace), CONS)

    @pytest.mark.parametrize("seed", range(6))
    def test_invariants_per_phase(self, seed):
        system = ComposedConsensus(n_servers=3, seed=seed, delay=jitter)
        for i in range(3):
            system.propose(f"c{i}", f"v{i}", at=0.0)
        system.run()
        for report in check_first_phase_invariants(
            system.first_phase_trace(), 2
        ):
            assert report.ok, report
        for report in check_second_phase_invariants(
            system.second_phase_trace(), 2
        ):
            assert report.ok, report

    @pytest.mark.parametrize("seed", range(4))
    def test_composition_theorem_on_simulated_traces(self, seed):
        system = ComposedConsensus(n_servers=3, seed=seed, delay=jitter)
        values = [f"v{i}" for i in range(2)]
        for i, v in enumerate(values):
            system.propose(f"c{i}", v, at=0.0)
        system.run()
        rin = consensus_rinit(values, max_extra=1)
        ok, why = check_composition_theorem(
            system.trace(), 1, 2, 3, CONS, rin
        )
        assert ok, why
        ok2, why2 = check_theorem_2(system.trace(), 3, CONS, rin)
        assert ok2, why2

    def test_faulty_run_stays_linearizable(self):
        for seed in range(5):
            system = ComposedConsensus(
                n_servers=3, seed=seed, loss_rate=0.1
            )
            system.crash_server(1, at=3.0)
            for i in range(3):
                system.propose(f"c{i}", f"v{i}", at=float(i))
            system.run(until=500.0)
            trace = system.trace()
            assert is_linearizable(strip_phase_tags(trace), CONS), seed

    def test_duplication_tolerated(self):
        # At-least-once channels: repeated deliveries must not break
        # agreement (the theory explicitly allows repeated events).
        for seed in range(5):
            system = ComposedConsensus(
                n_servers=3, seed=seed, duplicate_rate=0.3, delay=jitter
            )
            outcomes = [
                system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(3)
            ]
            system.run(until=500.0)
            decisions = {
                o.decided_value
                for o in outcomes
                if o.decided_value is not None
            }
            assert len(decisions) <= 1


class TestRobustnessMatrix:
    """The §2.1 promise: correct whenever Backup is correct — under any
    mix of contention, loss and minority crashes."""

    @pytest.mark.parametrize("loss", [0.0, 0.1, 0.25])
    @pytest.mark.parametrize("crash", [None, 0, 2])
    def test_agreement_matrix(self, loss, crash):
        system = ComposedConsensus(
            n_servers=3, seed=hash((loss, crash)) & 0xFF, loss_rate=loss,
            delay=jitter,
        )
        if crash is not None:
            system.crash_server(crash, at=2.0)
        outcomes = [
            system.propose(f"c{i}", f"v{i}", at=0.0) for i in range(3)
        ]
        system.run(until=1000.0)
        decisions = {
            o.decided_value for o in outcomes if o.decided_value is not None
        }
        assert len(decisions) <= 1
        if loss == 0.0:
            # Without loss every client decides (liveness with a
            # correct majority).
            assert len([o for o in outcomes if o.decided_value]) == 3
