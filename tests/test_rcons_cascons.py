"""Tests for RCons + CASCons (paper §2.5, Figures 2-3).

The headline checks run over *every* interleaving of two clients and a
large sample for three: agreement, linearizability of the projection,
invariants I1-I5 per phase, and the register-only fast path (E7).
"""

import pytest

from repro.core.actions import sig_phase
from repro.core.adt import consensus_adt
from repro.core.composition import check_composition_theorem
from repro.core.invariants import (
    check_first_phase_invariants,
    check_second_phase_invariants,
)
from repro.core.linearizability import is_linearizable
from repro.core.speculative import consensus_rinit, is_speculatively_linearizable
from repro.core.traces import is_phase_wellformed, strip_phase_tags
from repro.sm.cascons import cascons_propose_program, cascons_switch_program
from repro.sm.composed import explore_composed, run_composed
from repro.sm.memory import SharedMemory
from repro.sm.rcons import rcons_program
from repro.sm.scheduler import InterleavingScheduler

CONS = consensus_adt()


class TestRConsAlone:
    def test_solo_client_decides_own_value(self):
        memory = SharedMemory()
        outcome = {}

        def program():
            outcome["result"] = yield from rcons_program("c1", "v1")

        InterleavingScheduler(memory, {"c1": program()}).run_sequential()
        assert outcome["result"] == ("decide", "v1")
        assert memory.counts.cas == 0

    def test_second_sequential_client_adopts_decision(self):
        memory = SharedMemory()
        outcomes = {}

        def program(c, v):
            outcomes[c] = yield from rcons_program(c, v)

        InterleavingScheduler(
            memory, {"c1": program("c1", "v1"), "c2": program("c2", "v2")}
        ).run_sequential()
        assert outcomes["c1"] == ("decide", "v1")
        assert outcomes["c2"] == ("decide", "v1")  # reads D

    def test_contention_switches(self):
        # Lock-step interleaving drives both clients through the splitter
        # together: at most one wins; the loser switches.
        memory = SharedMemory()
        outcomes = {}

        def program(c, v):
            outcomes[c] = yield from rcons_program(c, v)

        scheduler = InterleavingScheduler(
            memory, {"c1": program("c1", "v1"), "c2": program("c2", "v2")}
        )
        scheduler.run_round_robin()
        kinds = sorted(kind for kind, _ in outcomes.values())
        assert "switch" in kinds


class TestCASCons:
    def test_first_switch_wins(self):
        memory = SharedMemory()
        outcomes = {}

        def program(c, v):
            outcomes[c] = yield from cascons_switch_program(v)

        InterleavingScheduler(
            memory, {"c1": program("c1", "v1"), "c2": program("c2", "v2")}
        ).run_sequential()
        assert outcomes["c1"] == ("decide", "v1")
        assert outcomes["c2"] == ("decide", "v1")

    def test_propose_after_switch_reads_decision(self):
        memory = SharedMemory()
        outcomes = {}

        def switcher():
            outcomes["s"] = yield from cascons_switch_program("v1")

        def proposer():
            outcomes["p"] = yield from cascons_propose_program("v2")

        scheduler = InterleavingScheduler(
            memory, {"a_switch": switcher(), "b_prop": proposer()}
        )
        scheduler.run_sequential()
        assert outcomes["s"] == ("decide", "v1")
        assert outcomes["p"] == ("decide", "v1")


class TestComposedSequential:
    def test_contention_free_uses_registers_only(self):
        run = run_composed(
            [("c1", "v1"), ("c2", "v2"), ("c3", "v3")], mode="sequential"
        )
        assert run.counts.cas == 0
        assert run.decisions == {"v1"}
        assert all(o.path == "fast" for o in run.outcomes.values())

    def test_trace_linearizable(self):
        run = run_composed([("c1", "v1"), ("c2", "v2")], mode="sequential")
        assert is_linearizable(strip_phase_tags(run.trace), CONS)


class TestComposedRandom:
    @pytest.mark.parametrize("seed", range(12))
    def test_agreement_and_linearizability(self, seed):
        run = run_composed(
            [("c1", "v1"), ("c2", "v2"), ("c3", "v3")],
            mode="random",
            seed=seed,
        )
        assert len(run.decisions) == 1
        assert is_phase_wellformed(run.trace, 1, 3)
        assert is_linearizable(strip_phase_tags(run.trace), CONS)

    @pytest.mark.parametrize("seed", range(6))
    def test_phases_speculatively_linearizable(self, seed):
        run = run_composed(
            [("c1", "v1"), ("c2", "v2")], mode="random", seed=seed
        )
        rin = consensus_rinit(["v1", "v2"], max_extra=1)
        p1 = run.trace.project(sig_phase(1, 2).contains)
        p2 = run.trace.project(sig_phase(2, 3).contains)
        assert is_speculatively_linearizable(p1, 1, 2, CONS, rin)
        assert is_speculatively_linearizable(p2, 2, 3, CONS, rin)

    @pytest.mark.parametrize("seed", range(4))
    def test_composition_theorem_on_sm_traces(self, seed):
        run = run_composed(
            [("c1", "v1"), ("c2", "v2")], mode="random", seed=seed
        )
        rin = consensus_rinit(["v1", "v2"], max_extra=1)
        ok, why = check_composition_theorem(run.trace, 1, 2, 3, CONS, rin)
        assert ok, why

    def test_contended_runs_use_cas(self):
        used_cas = False
        for seed in range(20):
            run = run_composed(
                [("c1", "v1"), ("c2", "v2")], mode="random", seed=seed
            )
            if run.counts.cas:
                used_cas = True
                assert any(o.switched for o in run.outcomes.values())
        assert used_cas


class TestComposedExhaustive:
    def test_every_interleaving_of_two_clients(self):
        checked = 0
        for run in explore_composed([("c1", "v1"), ("c2", "v2")]):
            checked += 1
            assert len(run.decisions) == 1, run.schedule
            for report in check_first_phase_invariants(
                run.trace.project(sig_phase(1, 2).contains), 2
            ):
                assert report.ok, (report, run.schedule)
            for report in check_second_phase_invariants(
                run.trace.project(sig_phase(2, 3).contains), 2
            ):
                assert report.ok, (report, run.schedule)
        assert checked > 1000

    def test_linearizability_sampled_interleavings(self):
        # The full linearizability check is costlier; sample every 7th
        # interleaving (still hundreds of schedules).
        for i, run in enumerate(
            explore_composed([("c1", "v1"), ("c2", "v2")])
        ):
            if i % 7:
                continue
            assert is_linearizable(
                strip_phase_tags(run.trace), CONS
            ), run.schedule

    def test_three_clients_sampled(self):
        for i, run in enumerate(
            explore_composed(
                [("c1", "v1"), ("c2", "v2"), ("c3", "v3")],
                max_schedules=400,
            )
        ):
            assert len(run.decisions) == 1, run.schedule


class TestWaitFreedom:
    """§2.5: RCons (and the composition) is wait-free — every client
    completes within a bounded number of its own steps, under every
    schedule."""

    def test_bounded_steps_over_all_interleavings(self):
        from collections import Counter

        # RCons worst case: D-read + splitter (4 ops) + contention path
        # (2 ops) + CAS = 8 atomic steps per client.
        bound = 8
        longest = 0
        for run in explore_composed([("c1", "v1"), ("c2", "v2")]):
            per_client = Counter(run.schedule)
            longest = max(longest, max(per_client.values()))
            assert all(n <= bound for n in per_client.values()), run.schedule
        assert longest <= bound

    def test_every_schedule_terminates_with_decisions(self):
        for run in explore_composed(
            [("c1", "v1"), ("c2", "v2")], max_schedules=2000
        ):
            assert all(
                o.decided_value is not None for o in run.outcomes.values()
            ), run.schedule
