"""Tests for the trace/witness pretty-printer."""

from repro.core.actions import inv, res, swi
from repro.core.adt import consensus_adt, decide, propose
from repro.core.linearizability import linearize
from repro.core.pretty import (
    describe_action,
    format_history,
    format_linearization,
    format_speculative,
    format_trace,
    side_by_side,
)
from repro.core.speculative import consensus_rinit, speculatively_linearize
from repro.core.traces import Trace

CONS = consensus_adt()


def sample_trace():
    return Trace(
        [
            inv("c1", 1, propose("v1")),
            inv("c2", 1, propose("v2")),
            res("c2", 1, propose("v2"), decide("v2")),
            res("c1", 1, propose("v1"), decide("v2")),
        ]
    )


class TestDescribeAction:
    def test_invocation(self):
        assert describe_action(inv("c", 1, propose("x"))) == (
            "inv[1] propose(x)"
        )

    def test_response(self):
        text = describe_action(res("c", 2, propose("x"), decide("y")))
        assert "res[2]" in text and "-> decide(y)" in text

    def test_switch(self):
        text = describe_action(swi("c", 2, propose("x"), "sv"))
        assert "swi[2]" in text and "sv" in text


class TestFormatTrace:
    def test_one_column_per_client(self):
        output = format_trace(sample_trace())
        header = output.splitlines()[0]
        assert "c1" in header and "c2" in header

    def test_one_row_per_action(self):
        output = format_trace(sample_trace())
        assert len(output.splitlines()) == 1 + len(sample_trace())

    def test_alignment_uses_dots(self):
        output = format_trace(sample_trace())
        assert "." in output

    def test_title_and_empty(self):
        assert "empty" in format_trace(Trace())
        assert format_trace(sample_trace(), title="T").startswith("T")


class TestFormatResults:
    def test_linearization_witness_rendered(self):
        trace = sample_trace()
        result = linearize(trace, CONS)
        output = format_linearization(trace, result)
        assert "linearizable: True" in output
        assert "propose(v2)" in output
        assert "commit @2" in output

    def test_linearization_failure_rendered(self):
        trace = Trace(
            [
                inv("c1", 1, propose("v1")),
                res("c1", 1, propose("v1"), decide("zz")),
            ]
        )
        result = linearize(trace, CONS)
        output = format_linearization(trace, result)
        assert "linearizable: False" in output
        assert "reason:" in output

    def test_speculative_witness_rendered(self):
        rin = consensus_rinit(["v1", "v2"], max_extra=1)
        trace = Trace(
            [
                inv("c1", 1, propose("v1")),
                res("c1", 1, propose("v1"), decide("v1")),
                inv("c2", 1, propose("v2")),
                swi("c2", 2, propose("v2"), "v1"),
            ]
        )
        result = speculatively_linearize(trace, 1, 2, CONS, rin)
        output = format_speculative(result)
        assert "speculatively linearizable: True" in output
        assert "abort" in output

    def test_speculative_failure_includes_interpretation(self):
        rin = consensus_rinit(["v1", "v2"], max_extra=1)
        trace = Trace(
            [
                swi("c1", 2, propose("v2"), "v1"),
                res("c1", 2, propose("v2"), decide("v2")),
            ]
        )
        result = speculatively_linearize(trace, 2, 3, CONS, rin)
        output = format_speculative(result)
        assert "speculatively linearizable: False" in output
        assert "failing init interpretation" in output


class TestHelpers:
    def test_format_history(self):
        assert format_history((propose("a"), propose("b"))) == (
            "[propose(a), propose(b)]"
        )

    def test_side_by_side(self):
        block = side_by_side("a\nbb", "X")
        lines = block.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("X")
