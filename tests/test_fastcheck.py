"""P-compositional checking agrees with the monolithic search.

The fast path of :mod:`repro.core.fastcheck` decomposes traces per
partition key (object name for products, map key for the KV store) and
checks projections independently — sound by the locality theorem.
These tests pin the engine to the monolithic verdict over random
multi-object trace families, exercise the KV-store partition, force the
monolithic fallback with a *non-local* mutant ADT whose objects secretly
share state, and cover the budget/pre-pass plumbing of the optimized
search itself.
"""

import random

from repro.core.actions import Invocation, Response, Switch
from repro.core.adt import (
    ADT,
    PartitionSpec,
    counter_adt,
    product_adt,
    reg_read,
    reg_write,
    register_adt,
    set_adt,
    tag_object,
)
from repro.core.fastcheck import (
    COMPOSITIONAL,
    CheckReport,
    MONOLITHIC,
    check_linearizable,
    is_linearizable_fast,
    partition_trace,
)
from repro.core.linearizability import (
    _must_precede_cycle,
    linearize,
    prepass_reject,
)
from repro.core.traces import Trace
from repro.smr.universal import (
    kv_cell_adt,
    kv_delete,
    kv_get,
    kv_put,
    kv_store_adt,
)


def product_inputs():
    from repro.core.adt import (
        counter_read,
        inc,
        set_add,
        set_contains,
    )

    return [
        tag_object("reg", reg_write(1)),
        tag_object("reg", reg_read()),
        tag_object("cnt", inc()),
        tag_object("cnt", counter_read()),
        tag_object("set", set_add("x")),
        tag_object("set", set_contains("x")),
    ]


def random_trace(rng, adt, inputs, n_clients=3, n_steps=10, honest=0.6):
    """Random well-formed phase-1 trace; dishonest responses use outputs
    from a shuffled history, which usually breaks linearizability."""
    clients = [f"c{i}" for i in range(n_clients)]
    open_input = {c: None for c in clients}
    state = adt.initial_state
    actions = []
    truthful = rng.random() < honest
    for _ in range(n_steps):
        client = rng.choice(clients)
        if open_input[client] is None:
            payload = rng.choice(inputs)
            actions.append(Invocation(client, 1, payload))
            open_input[client] = payload
        else:
            payload = open_input[client]
            if truthful:
                state, output = adt.transition(state, payload)
            else:
                history = [
                    rng.choice(inputs) for _ in range(rng.randrange(3))
                ] + [payload]
                output = adt.output(tuple(history))
            actions.append(Response(client, 1, payload, output))
            open_input[client] = None
    return Trace(actions)


class TestProductAgreement:
    def test_random_three_object_traces_agree(self):
        adt = product_adt(
            {
                "reg": register_adt(),
                "cnt": counter_adt(),
                "set": set_adt(),
            }
        )
        inputs = product_inputs()
        rng = random.Random(42)
        compositional_runs = 0
        negatives = 0
        for _ in range(200):
            trace = random_trace(rng, adt, inputs)
            mono = linearize(trace, adt)
            report = check_linearizable(trace, adt)
            assert mono.ok == report.ok, (trace, mono, report)
            if report.strategy == COMPOSITIONAL:
                compositional_runs += 1
            if not mono.ok:
                negatives += 1
        # The family must actually exercise the fast path and contain
        # genuine negatives, or the agreement above proves nothing.
        assert compositional_runs > 150
        assert negatives > 10

    def test_parts_reported(self):
        adt = product_adt({"reg": register_adt(), "cnt": counter_adt()})
        from repro.core.adt import inc

        trace = Trace(
            [
                Invocation("c1", 1, tag_object("reg", reg_write(5))),
                Response(
                    "c1", 1, tag_object("reg", reg_write(5)), ("reg", ("ok",))
                ),
                Invocation("c2", 1, tag_object("cnt", inc())),
                Response(
                    "c2", 1, tag_object("cnt", inc()), ("cnt", ("count", 0))
                ),
            ]
        )
        report = check_linearizable(trace, adt)
        assert report.ok
        assert report.strategy == COMPOSITIONAL
        assert dict(report.parts) == {"reg": 2, "cnt": 2}


class TestKVPartition:
    def test_random_kv_traces_agree(self):
        adt = kv_store_adt()
        inputs = [
            kv_put("a", 1),
            kv_put("a", 2),
            kv_get("a"),
            kv_delete("a"),
            kv_put("b", 7),
            kv_get("b"),
        ]
        rng = random.Random(9)
        for _ in range(200):
            trace = random_trace(rng, adt, inputs, n_steps=8)
            mono = linearize(trace, adt)
            report = check_linearizable(trace, adt)
            assert mono.ok == report.ok, (trace, mono, report)

    def test_cell_component_matches_store_outputs(self):
        cell = kv_cell_adt("k")
        state = cell.initial_state
        state, out = cell.transition(state, kv_put("k", 5))
        assert out == ("value", None)
        state, out = cell.transition(state, kv_get("k"))
        assert out == ("value", 5)
        state, out = cell.transition(state, kv_delete("k"))
        assert out == ("value", 5)
        _, out = cell.transition(state, kv_get("k"))
        assert out == ("value", None)

    def test_cross_key_pending_pair_is_ill_formed_globally(self):
        # One client with two pending invocations on different keys:
        # every per-key projection is well-formed, the global trace is
        # not — the engine must reject it like the monolithic checker.
        adt = kv_store_adt()
        trace = Trace(
            [
                Invocation("c1", 1, kv_put("a", 1)),
                Invocation("c1", 1, kv_put("b", 2)),
            ]
        )
        mono = linearize(trace, adt)
        report = check_linearizable(trace, adt)
        assert not mono.ok
        assert not report.ok
        assert "well-formed" in report.result.reason


def linked_registers_adt():
    """A *non-local* mutant: two named registers where writing either
    one writes both.  It reuses the product alphabet (inputs tagged
    "x" / "y") but outputs depend on the other object's history, so
    per-key decomposition would be unsound here — the engine must not
    take the fast path for it.
    """
    inner = register_adt()

    def is_input(payload):
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] in ("x", "y")
            and inner.is_input(payload[1])
        )

    def is_output(payload):
        return (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] in ("x", "y")
            and inner.is_output(payload[1])
        )

    def transition(state, input):
        name, op = input
        if op[0] == "write":
            # the non-local part: one write hits both registers
            return (op[1], op[1]), (name, ("ok",))
        value = state[0] if name == "x" else state[1]
        return state, (name, ("value", value))

    return ADT(
        "linked_registers", (None, None), transition, is_input, is_output
    )


class TestNonLocalMutantFallback:
    def trace_write_x_read_y(self):
        wx = ("x", reg_write(1))
        ry = ("y", reg_read())
        return Trace(
            [
                Invocation("c1", 1, wx),
                Response("c1", 1, wx, ("x", ("ok",))),
                Invocation("c2", 1, ry),
                Response("c2", 1, ry, ("y", ("value", 1))),
            ]
        )

    def test_mutant_without_spec_stays_monolithic(self):
        adt = linked_registers_adt()
        trace = self.trace_write_x_read_y()
        report = check_linearizable(trace, adt)
        assert report.strategy == MONOLITHIC
        # Linearizable for the linked semantics: the write to x set y.
        assert report.ok

    def test_naive_partition_of_mutant_would_flip_the_verdict(self):
        # Attach the per-name partition the alphabet *suggests* to the
        # linked ADT: the projections disagree with the monolithic
        # verdict, demonstrating why partition specs are a semantic
        # claim about the ADT and not derivable from payload shapes.
        adt = linked_registers_adt()
        naive = ADT(
            "linked_registers_naive",
            adt.initial_state,
            adt.transition,
            adt.is_input,
            adt.is_output,
            partition=PartitionSpec(
                key_of=lambda payload: payload[0],
                component=lambda key: register_adt(),
                project_input=lambda key, payload: payload[1],
                project_output=lambda key, payload: payload[1],
            ),
        )
        trace = self.trace_write_x_read_y()
        assert linearize(trace, adt).ok
        report = check_linearizable(trace, naive)
        assert report.strategy == COMPOSITIONAL
        assert not report.ok  # projection of y sees read(1) from nowhere


class TestPartitionTrace:
    def test_switch_actions_are_unpartitionable(self):
        spec = kv_store_adt().partition
        trace = Trace(
            [
                Invocation("c1", 1, kv_put("a", 1)),
                Switch("c1", 2, kv_put("a", 1), "v"),
            ]
        )
        assert partition_trace(trace, spec) is None
        # The engine's verdict still matches the monolithic checker's
        # (here: rejected as ill-formed for the phase-1 property).
        report = check_linearizable(trace, kv_store_adt())
        assert report.ok == linearize(trace, kv_store_adt()).ok

    def test_unexpected_payload_shapes_fall_back(self):
        spec = kv_store_adt().partition
        trace = Trace([Invocation("c1", 1, ("bogus",))])
        assert partition_trace(trace, spec) is None

    def test_projection_preserves_per_key_order(self):
        spec = kv_store_adt().partition
        trace = Trace(
            [
                Invocation("c1", 1, kv_put("a", 1)),
                Invocation("c2", 1, kv_put("b", 2)),
                Response("c1", 1, kv_put("a", 1), ("value", None)),
                Response("c2", 1, kv_put("b", 2), ("value", None)),
            ]
        )
        parts = partition_trace(trace, spec)
        assert set(parts) == {"a", "b"}
        assert [type(a).__name__ for a in parts["a"].actions] == [
            "Invocation",
            "Response",
        ]


class TestBudgets:
    def concurrent_corrupt_trace(self, n_clients=8):
        # All clients invoke, then all respond; last read is impossible,
        # so proving non-linearizability must exhaust the window.
        adt = register_adt()
        actions = [
            Invocation(f"c{i}", 1, reg_write(i)) for i in range(n_clients)
        ]
        actions.append(Invocation("r", 1, reg_read()))
        actions += [
            Response(f"c{i}", 1, reg_write(i), ("ok",))
            for i in range(n_clients)
        ]
        actions.append(Response("r", 1, reg_read(), ("value", "never")))
        return adt, Trace(actions)

    def test_state_limit_returns_unknown(self):
        adt, trace = self.concurrent_corrupt_trace()
        verdict = linearize(trace, adt, state_limit=10)
        assert not verdict.ok
        assert verdict.unknown
        assert "state memo budget" in verdict.reason

    def test_unlimited_search_settles_it(self):
        adt, trace = self.concurrent_corrupt_trace(n_clients=5)
        verdict = linearize(trace, adt)
        assert not verdict.ok
        assert not verdict.unknown

    def test_unknown_propagates_through_fastcheck(self):
        adt, trace = self.concurrent_corrupt_trace()
        report = check_linearizable(trace, adt, state_limit=10)
        assert report.unknown
        assert not report.ok

    def test_compositional_unknown_is_reported(self):
        adt = kv_store_adt()
        n = 8
        actions = [
            Invocation(f"c{i}", 1, kv_put("a", i)) for i in range(n)
        ]
        actions.append(Invocation("r", 1, kv_get("a")))
        actions += [
            Response(f"c{i}", 1, kv_put("a", i), ("value", "bogus"))
            for i in range(n)
        ]
        actions.append(Response("r", 1, kv_get("a"), ("value", "bogus")))
        trace = Trace(actions)
        report = check_linearizable(trace, adt, state_limit=5)
        assert report.unknown
        assert "partition" in report.result.reason


class TestPrepass:
    def test_singleton_explains_rejection(self):
        adt = register_adt()
        trace = Trace(
            [
                Invocation("c1", 1, reg_read()),
                Response("c1", 1, reg_read(), ("value", "ghost")),
            ]
        )
        verdict = linearize(trace, adt)
        assert not verdict.ok
        assert verdict.reason.startswith("pre-pass:")

    def test_prepass_reject_helper(self):
        adt = register_adt()
        trace = Trace(
            [
                Invocation("c1", 1, reg_read()),
                Response("c1", 1, reg_read(), ("value", "ghost")),
            ]
        )
        reason = prepass_reject(trace, adt, responses=[1], inv_pos={1: 0})
        assert reason is not None
        assert "Explains" in reason

    def test_must_precede_cycle_helper(self):
        # Directly drive the defensive cycle check with a caller-supplied
        # pairing: responses at 2 and 3 each claim an invocation *after*
        # the other's response, which no commit order can satisfy.
        cycle = _must_precede_cycle(responses=(2, 3), inv_pos={2: 5, 3: 4})
        assert cycle is not None
        acyclic = _must_precede_cycle(
            responses=(1, 3), inv_pos={1: 0, 3: 2}
        )
        assert acyclic is None

    def test_invalid_invocation_input_is_clean_false(self):
        adt = register_adt()
        trace = Trace([Invocation("c1", 1, ("not-a-register-op",))])
        verdict = linearize(trace, adt)
        assert not verdict.ok
        assert "invalid ADT input" in verdict.reason


class TestReportShape:
    def test_bool_and_properties(self):
        adt = kv_store_adt()
        trace = Trace(
            [
                Invocation("c1", 1, kv_put("a", 1)),
                Response("c1", 1, kv_put("a", 1), ("value", None)),
            ]
        )
        report = check_linearizable(trace, adt)
        assert isinstance(report, CheckReport)
        assert bool(report)
        assert report.ok and not report.unknown
        assert is_linearizable_fast(trace, adt)
