"""Tests for the crash-recovery model: durable state, timers, rejoins.

The simulator's recovery semantics (snapshot at crash time, volatile
state lost, pre-crash timers dead), the durable state of each protocol
role (Paxos acceptor triple, Quorum server's sticky acceptance), and the
end-to-end scenarios the nemesis campaign relies on: an acceptor
crash-recovering and rejoining mid-ballot without breaking agreement,
and the amnesiac mutant demonstrating that forgetting the triple does
break it.
"""

import pytest

from repro.core.linearizability import linearize
from repro.core.traces import strip_phase_tags
from repro.faults import (
    AmnesiacAcceptor,
    CrashServer,
    FaultSchedule,
    PartitionServers,
    RecoverServer,
    shrink_schedule,
)
from repro.faults.campaign import CAMPAIGN_BACKOFF, CONSENSUS, _ConsensusAdapter
from repro.mp.composed import ComposedConsensus
from repro.mp.paxos import PaxosAcceptor
from repro.mp.quorum import QuorumServer
from repro.mp.sim import Network, Process, Simulator
from repro.smr.kvstore import ReplicatedKVStore


class Counter(Process):
    """Durable total, volatile bonus — distinguishes what survives."""

    def __init__(self, pid):
        super().__init__(pid)
        self.total = 0
        self.bonus = 0
        self.fired = []

    def on_message(self, src, message):
        self.total += message
        self.bonus += message

    def durable_state(self):
        return self.total

    def on_recover(self, durable):
        self.total = durable
        self.bonus = 0


class TestProcessRecovery:
    def wire(self):
        sim = Simulator()
        network = Network(sim)
        counter = network.register(Counter("counter"))
        driver = network.register(Counter("driver"))
        return sim, network, counter, driver

    def test_durable_state_snapshotted_at_crash_time(self):
        sim, network, counter, driver = self.wire()
        sim.schedule(1.0, lambda: driver.send("counter", 5))
        network.crash_at("counter", 3.0)
        network.recover_at("counter", 6.0)
        sim.run()
        assert counter.total == 5  # survived via the durable snapshot
        assert counter.bonus == 0  # volatile state was lost

    def test_recover_is_noop_when_not_crashed(self):
        _, _, counter, _ = self.wire()
        counter.total = 7
        counter.recover()
        assert counter.total == 7

    def test_crash_is_idempotent(self):
        sim, network, counter, driver = self.wire()
        sim.schedule(1.0, lambda: driver.send("counter", 5))
        sim.run()
        counter.crash()
        counter.total = 99  # post-crash mutation must not leak into disk
        counter.crash()
        counter.recover()
        assert counter.total == 5

    def test_pre_crash_timers_never_fire_after_recovery(self):
        sim, _, counter, _ = self.wire()
        counter.set_timer(5.0, lambda: counter.fired.append("pre"))
        sim.schedule(1.0, counter.crash)
        sim.schedule(2.0, counter.recover)
        sim.run()
        assert counter.fired == []

    def test_post_recovery_timers_fire(self):
        sim, _, counter, _ = self.wire()
        sim.schedule(1.0, counter.crash)
        sim.schedule(2.0, counter.recover)
        sim.schedule(
            3.0,
            lambda: counter.set_timer(
                1.0, lambda: counter.fired.append("post")
            ),
        )
        sim.run()
        assert counter.fired == ["post"]

    def test_messages_to_crashed_process_counted_dropped(self):
        sim, network, counter, driver = self.wire()
        counter.crash()
        sim.schedule(1.0, lambda: driver.send("counter", 5))
        sim.run()
        assert counter.total == 0
        assert network.stats.dropped_crashed == 1


class TestRoleDurability:
    def test_acceptor_triple_survives_restart(self):
        acceptor = PaxosAcceptor("acc")
        acceptor.promised = 7
        acceptor.accepted_ballot = 7
        acceptor.accepted_value = "v"
        acceptor.crash()
        acceptor.recover()
        assert acceptor.promised == 7
        assert acceptor.accepted_ballot == 7
        assert acceptor.accepted_value == "v"

    def test_amnesiac_acceptor_restarts_blank(self):
        acceptor = AmnesiacAcceptor("acc")
        acceptor.promised = 7
        acceptor.accepted_ballot = 7
        acceptor.accepted_value = "v"
        acceptor.crash()
        acceptor.recover()
        assert acceptor.promised == -1
        assert acceptor.accepted_value is None

    def test_quorum_server_sticky_acceptance_survives(self):
        server = QuorumServer("qs")
        server.accepted = "v"
        server.crash()
        server.recover()
        assert server.accepted == "v"


#: a directed schedule wiping the original accept quorum's memory:
#: server 2 is cut off while the first decision forms on acceptors
#: {0, 1}; both then crash-recover, so only stable storage remembers
WIPE_SCHEDULE = FaultSchedule(
    seed=0,
    actions=(
        PartitionServers(at=0.0, servers=(2,), duration=30.0),
        CrashServer(at=40.0, server=1),
        RecoverServer(at=50.0, server=1),
        CrashServer(at=55.0, server=0),
        RecoverServer(at=65.0, server=0),
    ),
    horizon=400.0,
)


def wiped_quorum_run(acceptor_cls, schedule=WIPE_SCHEDULE):
    """Early proposer decides via Backup; late proposer arrives after
    the churn.  Agreement then hinges on acceptor stable storage."""
    system = ComposedConsensus(
        n_servers=3,
        seed=0,
        expected_clients=2,
        backoff=CAMPAIGN_BACKOFF,
        acceptor_cls=acceptor_cls,
    )
    schedule.inject(_ConsensusAdapter(system))
    early = system.propose("c0", "v0", at=1.0)
    late = system.propose("c1", "v1", at=80.0)
    system.run(until=schedule.horizon)
    verdict = linearize(
        strip_phase_tags(system.trace()), CONSENSUS, node_limit=200000
    )
    return early, late, verdict


class TestAcceptorRejoinsMidBallot:
    def test_durable_acceptor_preserves_agreement(self):
        early, late, verdict = wiped_quorum_run(PaxosAcceptor)
        assert early.decided_value == "v0"
        assert late.decided_value == "v0"  # stable storage won
        assert verdict.ok

    def test_amnesiac_acceptor_breaks_agreement(self):
        early, late, verdict = wiped_quorum_run(AmnesiacAcceptor)
        assert early.decided_value == "v0"
        assert late.decided_value == "v1"  # the forgotten decision
        assert not verdict.ok

    def test_violation_shrinks_to_minimal_schedule(self):
        def still_fails(candidate):
            _, _, verdict = wiped_quorum_run(AmnesiacAcceptor, candidate)
            return not verdict.ok

        shrunk = shrink_schedule(WIPE_SCHEDULE, still_fails)
        assert still_fails(shrunk)
        assert shrunk.seed == WIPE_SCHEDULE.seed
        # 1-minimality: every remaining action is load-bearing.
        for drop in range(len(shrunk.actions)):
            keep = [i for i in range(len(shrunk.actions)) if i != drop]
            assert not still_fails(shrunk.subset(keep))

    def test_recover_requires_registered_pids(self):
        system = ComposedConsensus(n_servers=3, seed=0)
        with pytest.raises(ValueError, match="unregistered"):
            system.network.recover_at(("acc", 99), 1.0)


class TestSMRRecovery:
    def test_recovered_server_rejoins_and_cluster_commits(self):
        kv = ReplicatedKVStore(
            n_servers=3, seed=0, backoff=CAMPAIGN_BACKOFF
        )
        kv.smr.crash_server(0, at=5.0)
        kv.smr.recover_server(0, at=40.0)
        kv.put("c0", "x", 1, at=1.0)
        kv.put("c1", "x", 2, at=10.0)
        kv.get("c2", "x", at=80.0)
        kv.run(until=400.0)
        outcomes = kv.smr.outcomes
        assert all(o.commit_time is not None for o in outcomes)
        from repro.smr.universal import kv_store_adt

        verdict = linearize(
            kv.interface_trace(), kv_store_adt(), node_limit=200000
        )
        assert verdict.ok

    def test_recovery_covers_slots_created_while_down(self):
        # Slots created during the outage mark the server crashed; the
        # recovery sweep must revive those lazily-created roles too.
        kv = ReplicatedKVStore(
            n_servers=3, seed=1, backoff=CAMPAIGN_BACKOFF
        )
        kv.smr.crash_server(1, at=0.0)
        kv.put("c0", "x", 1, at=5.0)  # slot decided while server 1 down
        kv.smr.recover_server(1, at=60.0)
        kv.put("c1", "y", 2, at=80.0)
        kv.run(until=400.0)
        assert all(o.commit_time is not None for o in kv.smr.outcomes)
        for slot, instance in kv.smr.slots.items():
            for pid in (
                ("qs", slot, 1),
                ("acc", slot, 1),
                ("coord", slot, 1),
            ):
                process = kv.smr.network.processes.get(pid)
                if process is not None:
                    assert not process.crashed
