"""Tests for the discrete-event message-passing simulator."""

import pytest

from repro.mp.sim import Network, Process, Simulator, Timer


class Echo(Process):
    """Replies to every ("ping", k) with ("pong", k); records receipts."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, src, message):
        self.received.append((self.sim.now, src, message))
        if message[0] == "ping":
            self.send(src, ("pong", message[1]))


class TestSimulator:
    def test_virtual_time_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.run()
        assert order == ["early", "late"]

    def test_fifo_tiebreak_at_same_time(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.pending_events() == 1

    def test_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        sim.run(max_events=3)
        assert sim.events_processed == 3

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_determinism_across_runs(self):
        def run(seed):
            sim = Simulator(seed=seed)
            values = []
            def emit():
                values.append(sim.rng.random())
                if len(values) < 5:
                    sim.schedule(sim.rng.random(), emit)
            sim.schedule(0.0, emit)
            sim.run()
            return values

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestTimer:
    def test_timer_fires(self):
        sim = Simulator()
        fired = []
        Timer(sim, 2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_timer_cancel(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(1))
        timer.cancel()
        sim.run()
        assert fired == []
        assert timer.cancelled and not timer.fired


class TestNetwork:
    def test_unit_delay_roundtrip(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        a.send("b", ("ping", 1))
        sim.run()
        assert b.received[0][0] == 1.0  # one message delay
        assert a.received[0][0] == 2.0  # the pong: two delays total
        assert a.received[0][2] == ("pong", 1)

    def test_duplicate_registration_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.register(Echo("a"))
        with pytest.raises(ValueError):
            net.register(Echo("a"))

    def test_loss(self):
        sim = Simulator(seed=1)
        net = Network(sim, loss_rate=1.0)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        a.send("b", ("ping", 1))
        sim.run()
        assert b.received == []
        assert net.stats.lost == 1

    def test_duplication(self):
        sim = Simulator(seed=1)
        net = Network(sim, duplicate_rate=1.0)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        a.send("b", ("ping", 1))
        sim.run(until=1.5)
        assert len(b.received) == 2
        # The ping and both reply pongs are each duplicated.
        assert net.stats.duplicated >= 1

    def test_crashed_process_drops_messages(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        b.crash()
        a.send("b", ("ping", 1))
        sim.run()
        assert b.received == []
        assert net.stats.dropped_crashed == 1

    def test_crashed_process_stops_sending(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        a.crash()
        a.send("b", ("ping", 1))
        sim.run()
        assert b.received == []
        assert net.stats.sent == 0

    def test_crash_at_scheduled_time(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        net.crash_at("b", 1.5)
        a.send("b", ("ping", 1))  # arrives at 1.0: delivered
        sim.schedule(2.0, lambda: a.send("b", ("ping", 2)))  # arrives 3.0
        sim.run()
        assert [m for _, _, m in b.received] == [("ping", 1)]

    def test_timer_suppressed_after_crash(self):
        sim = Simulator()
        net = Network(sim)
        a = Echo("a")
        net.register(a)
        fired = []
        a.set_timer(2.0, lambda: fired.append(1))
        a.crash()
        sim.run()
        assert fired == []

    def test_random_delay_model(self):
        sim = Simulator(seed=5)
        net = Network(sim, delay=lambda rng: rng.uniform(0.5, 1.5))
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        a.send("b", ("ping", 1))
        sim.run()
        assert 0.5 <= b.received[0][0] <= 1.5

    def test_broadcast(self):
        sim = Simulator()
        net = Network(sim)
        a = Echo("a")
        peers = [Echo(f"p{i}") for i in range(3)]
        net.register(a)
        for p in peers:
            net.register(p)
        a.broadcast([p.pid for p in peers], ("ping", 7))
        sim.run(until=1.0)
        assert all(len(p.received) == 1 for p in peers)


class TestPartitions:
    def test_partition_blocks_both_directions(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        net.partition({"a"}, {"b"}, start=0.0, end=10.0)
        a.send("b", ("ping", 1))
        sim.schedule(5.0, lambda: b.send("a", ("ping", 2)))
        sim.run(until=9.0)
        assert a.received == [] and b.received == []
        assert net.stats.partitioned == 2

    def test_partition_heals(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        net.partition({"a"}, {"b"}, start=0.0, end=5.0)
        sim.schedule(6.0, lambda: a.send("b", ("ping", 1)))
        sim.run()
        assert len(b.received) == 1

    def test_partition_does_not_affect_same_side(self):
        sim = Simulator()
        net = Network(sim)
        a, b, c = Echo("a"), Echo("b"), Echo("c")
        for p in (a, b, c):
            net.register(p)
        net.partition({"a", "b"}, {"c"}, start=0.0, end=10.0)
        a.send("b", ("ping", 1))
        sim.run(until=3.0)
        assert len(b.received) == 1

    def test_in_flight_messages_survive_cut(self):
        sim = Simulator()
        net = Network(sim)
        a, b = Echo("a"), Echo("b")
        net.register(a)
        net.register(b)
        net.partition({"a"}, {"b"}, start=0.5, end=10.0)
        a.send("b", ("ping", 1))  # sent at t=0, arrives t=1 (cut at 0.5)
        sim.run(until=2.0)
        assert len(b.received) == 1

    def test_invalid_partition_rejected(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            net.partition({"a"}, {"b"}, start=5.0, end=5.0)


class TestPartitionedConsensus:
    def test_minority_partition_blocks_then_heals(self):
        from repro.mp import ComposedConsensus

        system = ComposedConsensus(n_servers=3, seed=0)
        # Cut the client side from server 2's roles: Quorum cannot get
        # all accepts, Backup still has a majority.
        cut = {("qs", 2), ("acc", 2), ("coord", 2)}
        rest = set(system.network.processes) - cut | {("qcli", 0), ("bcli", 0)}
        system.network.partition(cut, rest, start=0.0, end=100.0)
        outcome = system.propose("c1", "v1", at=1.0)
        system.run(until=400.0)
        assert outcome.decided_value == "v1"
        assert outcome.path == "slow"

    def test_majority_partition_is_safe_not_live(self):
        from repro.mp import ComposedConsensus

        system = ComposedConsensus(n_servers=3, seed=0)
        cut = {
            ("qs", 1), ("acc", 1), ("coord", 1),
            ("qs", 2), ("acc", 2), ("coord", 2),
        }
        rest = set(system.network.processes) - cut | {("qcli", 0), ("bcli", 0)}
        system.network.partition(cut, rest, start=0.0, end=150.0)
        outcome = system.propose("c1", "v1", at=1.0)
        system.run(until=100.0)
        assert outcome.decided_value is None  # no majority reachable
        system.run(until=800.0)  # partition heals at 150
        assert outcome.decided_value == "v1"  # retries get through
