"""Tests for the gray-failure & storage-fault nemesis.

Three layers, mirroring the implementation:

* the simulator's gray windows (slow node, timer drift, clock skew) as
  observable scheduling facts, then as directed nemesis campaigns whose
  every history must stay linearizable;
* the WAL degradation matrix over the injectable filesystem seam —
  torn tails tolerated, interior bit flips fail-stopped, ``ENOSPC``
  rolled back and retried, lying fsync exposed as a clean tear — plus
  the :class:`~repro.net.node._DurableRole` backoff-and-retry state
  machine driven over a simulated network;
* the live TCP cluster under a gray burst (slow node + asymmetric
  bridge + torn-tail restart) and the bit-flip fail-stop canary.
"""

import os

import pytest

from repro.faults import (
    ClockSkew,
    FaultSchedule,
    SlowNode,
    TimerDrift,
    random_schedule,
)
from repro.faults.campaign import SMRTarget
from repro.faults.netcampaign import (
    NetPartition,
    NetSchedule,
    NetSlowNode,
    RestartNode,
    WALBitFlip,
    WALNoSpace,
    WALTearTail,
    asymmetric_bridge,
    random_net_schedule,
    run_net_campaign,
)
from repro.mp.sim import Network, Process, Simulator
from repro.net.faultfs import (
    FaultyFS,
    TornWriteCrash,
    flip_record_body,
    tear_tail,
)
from repro.net.node import _DurableRole
from repro.net.wal import (
    NodeWAL,
    WALCorruptionError,
    WALFullError,
    WriteAheadLog,
)

SILENT = lambda line: None  # noqa: E731


class Sink(Process):
    def __init__(self, pid):
        super().__init__(pid)
        self.received = []  # (arrival time, message)

    def on_message(self, src, message):
        self.received.append((self.network.now, message))


# ----------------------------------------------------------------------
# simulator gray windows
# ----------------------------------------------------------------------


class TestSimGrayWindows:
    def rig(self):
        sim = Simulator()
        network = Network(sim)
        a = network.register(Sink("a"))
        b = network.register(Sink("b"))
        return sim, network, a, b

    def test_slow_node_multiplies_delivery_delay(self):
        sim, network, a, b = self.rig()
        network.slow_node(["b"], 3.0, start=0.0, end=10.0)
        sim.schedule(1.0, lambda: a.send("b", "in-window"))
        sim.schedule(20.0, lambda: a.send("b", "after"))
        sim.run()
        # baseline delay is 1.0: tripled inside the window, honest after
        assert b.received == [(4.0, "in-window"), (21.0, "after")]

    def test_slow_windows_compose_multiplicatively(self):
        _, network, _, _ = self.rig()
        network.slow_node(["b"], 2.0, start=0.0, end=10.0)
        network.slow_node(["b"], 3.0, start=0.0, end=10.0)
        assert network.slow_factor("b") == 6.0
        assert network.slow_factor("a") == 1.0

    def test_timer_drift_scales_set_timer(self):
        sim, network, a, _ = self.rig()
        network.timer_drift(["a"], 2.0, start=0.0, end=100.0)
        fired = []
        sim.schedule(
            1.0, lambda: a.set_timer(5.0, lambda: fired.append(network.now))
        )
        sim.run()
        assert fired == [11.0]  # armed at 1.0, 5.0 stretched 2x

    def test_clock_skew_lies_only_to_local_now(self):
        sim, network, a, b = self.rig()
        network.clock_skew(["a"], 25.0, start=0.0, end=10.0)
        readings = []
        sim.schedule(
            1.0, lambda: readings.append((a.local_now(), b.local_now()))
        )
        sim.schedule(
            11.0, lambda: readings.append((a.local_now(), b.local_now()))
        )
        sim.run()
        assert readings[0] == (26.0, 1.0)  # a lies, b is honest
        assert readings[1] == (11.0, 11.0)  # window closed: truth again

    def test_windows_reject_degenerate_bounds(self):
        _, network, _, _ = self.rig()
        with pytest.raises(ValueError):
            network.slow_node(["a"], 2.0, start=5.0, end=5.0)
        with pytest.raises(ValueError):
            network.timer_drift(["a"], 0.0, start=0.0, end=5.0)
        with pytest.raises(ValueError):
            network.clock_skew(["a"], 1.0, start=5.0, end=1.0)


class TestSimGrayCampaigns:
    @pytest.mark.parametrize(
        "action",
        [
            SlowNode(at=5.0, server=1, factor=4.0, duration=60.0),
            TimerDrift(at=5.0, server=1, rate=2.5, duration=60.0),
            TimerDrift(at=5.0, server=0, rate=0.4, duration=60.0),
            ClockSkew(at=5.0, server=2, offset=40.0, duration=60.0),
        ],
        ids=["slow", "drift-late", "drift-early", "skew"],
    )
    def test_directed_gray_schedule_stays_linearizable(self, action):
        result = SMRTarget().run(
            FaultSchedule(seed=9, actions=(action,))
        )
        assert result.ok
        assert not result.inconclusive

    def test_gray_campaign_runs_are_reproducible(self):
        schedule = FaultSchedule(
            seed=7,
            actions=(
                SlowNode(at=5.0, server=0, factor=3.0, duration=50.0),
                TimerDrift(at=20.0, server=1, rate=2.0, duration=50.0),
                ClockSkew(at=40.0, server=2, offset=-30.0, duration=50.0),
            ),
        )
        one = SMRTarget().run(schedule)
        two = SMRTarget().run(schedule)
        assert one.line() == two.line()
        assert one.ok

    def test_random_schedule_draws_every_gray_shape(self):
        kinds = set()
        for seed in range(120):
            schedule = random_schedule(seed=seed, n_servers=3)
            assert schedule == random_schedule(seed=seed, n_servers=3)
            kinds.update(schedule.fault_classes())
        assert {"SlowNode", "TimerDrift", "ClockSkew"} <= kinds


# ----------------------------------------------------------------------
# WAL degradation matrix
# ----------------------------------------------------------------------


class TestWALFaultMatrix:
    def seeded_log(self, tmp_path, n=3):
        wal = WriteAheadLog(str(tmp_path))
        for i in range(n):
            wal.append(("qs", i, f"v{i}"))
        wal.close()
        return os.path.join(str(tmp_path), "wal.log")

    def test_torn_tail_is_tolerated_and_reopens_clean(self, tmp_path):
        path = self.seeded_log(tmp_path)
        assert tear_tail(path, cut=3)
        wal = WriteAheadLog(str(tmp_path))
        assert wal.torn_tail
        assert [r[2] for r in wal.records] == ["v0", "v1"]
        wal.append(("qs", 9, "post-tear"))
        wal.close()
        again = WriteAheadLog(str(tmp_path))
        assert not again.torn_tail
        assert [r[2] for r in again.records] == ["v0", "v1", "post-tear"]
        again.close()

    def test_bit_flip_fail_stops_replay(self, tmp_path):
        path = self.seeded_log(tmp_path)
        assert flip_record_body(path, seed=5)
        with pytest.raises(WALCorruptionError):
            WriteAheadLog(str(tmp_path))

    def test_enospc_rolls_back_and_recovers(self, tmp_path):
        fs = FaultyFS(seed=1)
        wal = WriteAheadLog(str(tmp_path), fs=fs)
        wal.append(("qs", 0, "a"))
        fs.fail_appends(2, partial=True)
        for _ in range(2):
            with pytest.raises(WALFullError):
                wal.append(("qs", 1, "b"))
        wal.append(("qs", 1, "b"))  # space came back
        wal.close()
        replay = WriteAheadLog(str(tmp_path))
        assert not replay.torn_tail  # partial frames were rolled back
        assert [r[2] for r in replay.records] == ["a", "b"]
        replay.close()

    def test_torn_append_kills_the_process_not_the_prefix(self, tmp_path):
        fs = FaultyFS(seed=2)
        wal = WriteAheadLog(str(tmp_path), fs=fs)
        wal.append(("qs", 0, "a"))
        fs.tear_next_append()
        with pytest.raises(TornWriteCrash):
            wal.append(("qs", 1, "lost"))
        # the fs died with the process; any further use must refuse
        with pytest.raises(TornWriteCrash):
            wal.append(("qs", 2, "ghost"))
        # a restart (fresh honest fs) tolerates the tear
        replay = WriteAheadLog(str(tmp_path))
        assert replay.torn_tail
        assert [r[2] for r in replay.records] == ["a"]
        replay.close()

    def test_lying_fsync_exposed_by_power_cut_reads_clean(self, tmp_path):
        fs = FaultyFS(seed=3, lying_fsync=True)
        wal = WriteAheadLog(str(tmp_path), fs=fs)
        wal.append(("qs", 0, "a"))
        wal.append(("qs", 1, "b"))
        wal.close()
        fs.drop_unsynced(os.path.join(str(tmp_path), "wal.log"))
        replay = WriteAheadLog(str(tmp_path))
        # nothing was honestly durable, so everything is gone — but the
        # log is a clean (empty) prefix, not corruption
        assert replay.records == []
        replay.close()

    def test_corrupt_reads_fail_stop_the_fold(self, tmp_path):
        self.seeded_log(tmp_path)
        fs = FaultyFS(seed=4, corrupt_reads=True)
        with pytest.raises(WALCorruptionError):
            NodeWAL(str(tmp_path), fs=fs)
        assert fs.stats["flipped_reads"] == 1

    def test_lying_fsync_under_group_commit_loses_a_clean_suffix(
        self, tmp_path
    ):
        # Group commit batches a tick's appends behind one fsync; if
        # that fsync lies, the power cut drops the *whole batch* back
        # to the last honest sync — a clean prefix replay, exactly the
        # per-append-fsync story.  Coalescing must not change the
        # failure shape, only the fsync count.
        import asyncio

        fs = FaultyFS(seed=5, lying_fsync=True)
        wal = NodeWAL(str(tmp_path), fs=fs, group_commit=True)

        async def tick():
            for slot in range(4):
                wal.record_durable("dec", slot, f"v{slot}", lambda: None)
            await asyncio.sleep(0)  # the (lying) group flush

        asyncio.run(tick())
        assert wal.group_flushes == 1  # the flush "succeeded"
        wal.close()
        fs.drop_unsynced(os.path.join(str(tmp_path), "wal.log"))
        replay = NodeWAL(str(tmp_path))
        # nothing was honestly durable: the batch is gone together, the
        # log reads as a clean (empty) prefix, never corruption
        assert replay.recovered.decided == {}
        assert not replay.recovered.torn_tail
        replay.close()


# ----------------------------------------------------------------------
# _DurableRole ENOSPC backoff over a simulated network
# ----------------------------------------------------------------------


class _EchoBase(Process):
    """Volatile base: remember the last value, ack it back."""

    def __init__(self, pid):
        super().__init__(pid)
        self.value = None

    def on_message(self, src, message):
        self.value = message
        self.send(src, ("ack", message))

    def durable_state(self):
        return self.value

    def on_recover(self, state):
        self.value = state


class EchoRole(_DurableRole, _EchoBase):
    def __init__(self, pid, wal):
        super().__init__(pid)
        self._wire_wal(wal, "qs", 0)


class TestDurableRoleBackoff:
    def rig(self, tmp_path, fs):
        sim = Simulator()
        network = Network(sim, delay=0.001)
        wal = NodeWAL(str(tmp_path), fs=fs)
        role = network.register(EchoRole("server", wal))
        client = network.register(Sink("client"))
        return sim, role, client

    def test_enospc_defers_the_reply_until_persisted(self, tmp_path):
        fs = FaultyFS(seed=4)
        sim, role, client = self.rig(tmp_path, fs)
        fs.fail_appends(2)
        sim.schedule(0.01, lambda: client.send("server", "v1"))
        # arrives while the retry is pending: dropped, never answered
        sim.schedule(0.02, lambda: client.send("server", "v2"))
        sim.run()
        assert [m for _, m in client.received] == [("ack", "v1")]
        assert not role._wal.closed
        assert fs.stats["enospc"] == 2
        # the ack was only released once the fact was really on disk
        role._wal.close()
        assert NodeWAL(str(tmp_path)).state.quorum[0] == "v1"

    def test_exhausted_backoff_fail_stops(self, tmp_path):
        fs = FaultyFS(seed=5)
        sim, role, client = self.rig(tmp_path, fs)
        fs.fail_appends(100)  # the disk never comes back
        sim.schedule(0.01, lambda: client.send("server", "v1"))
        sim.run()
        assert client.received == []
        assert role._wal.closed
        # fail-stopped: later frames are dropped, not answered
        sim.schedule(0.01, lambda: client.send("server", "v2"))
        sim.run()
        assert client.received == []


# ----------------------------------------------------------------------
# live-cluster gray campaigns
# ----------------------------------------------------------------------


class TestNetScheduleGeneration:
    def test_storage_faults_flag_adds_a_tear_restart_pair(self):
        for seed in range(10):
            schedule = random_net_schedule(seed=seed, storage_faults=True)
            assert schedule == random_net_schedule(
                seed=seed, storage_faults=True
            )
            tears = [
                a for a in schedule.actions if isinstance(a, WALTearTail)
            ]
            assert len(tears) == 1
            assert any(
                isinstance(a, RestartNode)
                and a.node == tears[0].node
                and a.at > tears[0].at
                for a in schedule.actions
            )

    def test_gray_shapes_are_drawn_deterministically(self):
        kinds = set()
        one_way = False
        for seed in range(120):
            schedule = random_net_schedule(seed=seed)
            assert schedule == random_net_schedule(seed=seed)
            kinds.update(schedule.fault_classes())
            one_way = one_way or any(
                isinstance(a, NetPartition) and a.one_way
                for a in schedule.actions
            )
        assert "NetSlowNode" in kinds
        assert one_way

    def test_asymmetric_bridge_is_a_ring_of_one_way_cuts(self):
        actions = asymmetric_bridge(at=0.5, duration=0.4)
        assert len(actions) == 3
        assert all(a.one_way for a in actions)
        assert {(a.a, a.b) for a in actions} == {
            ("node0", "node1"),
            ("node1", "node2"),
            ("node2", "node0"),
        }


class TestLiveGrayCampaign:
    def test_gray_burst_campaign_stays_linearizable(self):
        """Slow node + asymmetric bridge + torn-tail WAL restart, all in
        one live run: every recorded history must still linearize."""
        schedule = NetSchedule(
            seed=0,
            actions=(
                NetSlowNode(at=0.3, node=1, delay=0.03, duration=0.8),
                *asymmetric_bridge(at=0.5, duration=0.4),
                WALTearTail(at=0.7, node=2, cut=3),
                RestartNode(at=1.2, node=2),
            ),
            horizon=3.0,
        )
        report = run_net_campaign(
            schedules=[schedule],
            clients=2,
            ops_per_client=5,
            emit=SILENT,
        )
        assert report.all_linearizable
        (run,) = report.runs
        assert run.ok
        assert run.kills == 1
        assert run.restarts == 1
        assert run.failstops == 0
        assert run.committed > 0

    def test_bit_flip_fail_stops_the_node(self):
        """A flipped record body must keep the node dead: the restart
        raises WALCorruptionError, the run counts a failstop, and the
        surviving majority keeps the history linearizable."""
        schedule = NetSchedule(
            seed=1,
            actions=(
                WALBitFlip(at=0.7, node=2),
                RestartNode(at=1.2, node=2),
            ),
            horizon=3.0,
        )
        report = run_net_campaign(
            schedules=[schedule],
            clients=2,
            ops_per_client=5,
            emit=SILENT,
        )
        assert report.all_linearizable
        (run,) = report.runs
        assert run.ok
        assert run.kills == 1
        assert run.restarts == 0
        assert run.failstops == 1
        assert "failstops=1" in run.line()

    def test_wal_nospace_backpressure_stays_linearizable(self):
        """ENOSPC on one replica's WAL: held replies and backoff retries
        on that node, Backup progress through the others — and no reply
        about unpersisted state, so the history linearizes."""
        schedule = NetSchedule(
            seed=2,
            actions=(WALNoSpace(at=0.4, node=1, count=3),),
            horizon=3.0,
        )
        report = run_net_campaign(
            schedules=[schedule],
            clients=2,
            ops_per_client=5,
            emit=SILENT,
        )
        assert report.all_linearizable
        (run,) = report.runs
        assert run.ok
        assert run.committed > 0
