"""Unit and property tests for multisets (paper Section 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.multisets import Multiset, elems, sum_all, union_all

bags = st.lists(st.integers(0, 3), max_size=8).map(Multiset)


class TestBasics:
    def test_empty(self):
        m = Multiset()
        assert len(m) == 0
        assert m.count("x") == 0
        assert "x" not in m

    def test_counting(self):
        m = Multiset("aabc")
        assert m.count("a") == 2
        assert m.count("b") == 1
        assert m.count("z") == 0
        assert len(m) == 4

    def test_support(self):
        assert Multiset("aab").support() == frozenset({"a", "b"})

    def test_elements_respects_multiplicity(self):
        assert sorted(Multiset("aab").elements()) == ["a", "a", "b"]

    def test_equality_ignores_order(self):
        assert Multiset("ab") == Multiset("ba")
        assert Multiset("aab") != Multiset("ab")

    def test_hashable(self):
        assert hash(Multiset("ab")) == hash(Multiset("ba"))
        assert len({Multiset("ab"), Multiset("ba")}) == 1

    def test_from_counts(self):
        m = Multiset.from_counts({"a": 2, "b": 0})
        assert m == Multiset("aa")

    def test_from_counts_rejects_negative(self):
        with pytest.raises(ValueError):
            Multiset.from_counts({"a": -1})

    def test_add_remove(self):
        m = Multiset("a").add("a").add("b", 2)
        assert m == Multiset("aabb")
        assert m.remove("b") == Multiset("aab")

    def test_remove_too_many(self):
        with pytest.raises(KeyError):
            Multiset("a").remove("a", 2)

    def test_to_counter(self):
        assert Multiset("aab").to_counter() == {"a": 2, "b": 1}

    def test_repr_is_stable(self):
        assert repr(Multiset("ba")) == repr(Multiset("ab"))


class TestUnionAndSum:
    def test_union_is_pointwise_max(self):
        m = Multiset("aab") | Multiset("abb")
        assert m == Multiset("aabb")

    def test_sum_is_additive(self):
        m = Multiset("aab") + Multiset("abb")
        assert m == Multiset("aaabbb")

    def test_union_all_empty(self):
        assert union_all([]) == Multiset()

    def test_sum_all(self):
        assert sum_all([Multiset("a"), Multiset("ab")]) == Multiset("aab")

    @given(bags, bags)
    def test_union_commutative(self, m1, m2):
        assert m1 | m2 == m2 | m1

    @given(bags, bags)
    def test_sum_commutative(self, m1, m2):
        assert m1 + m2 == m2 + m1

    @given(bags, bags, bags)
    def test_union_associative(self, m1, m2, m3):
        assert (m1 | m2) | m3 == m1 | (m2 | m3)

    @given(bags)
    def test_union_idempotent(self, m):
        assert m | m == m

    @given(bags, bags)
    def test_union_below_sum(self, m1, m2):
        assert (m1 | m2) <= (m1 + m2)

    @given(bags, bags)
    def test_components_below_union(self, m1, m2):
        assert m1 <= (m1 | m2)
        assert m2 <= (m1 | m2)


class TestInclusion:
    def test_subset_basics(self):
        assert Multiset("ab") <= Multiset("aab")
        assert not Multiset("aab") <= Multiset("ab")

    def test_empty_subset_of_all(self):
        assert Multiset() <= Multiset("abc")

    @given(bags)
    def test_reflexive(self, m):
        assert m <= m

    @given(bags, bags, bags)
    def test_transitive(self, m1, m2, m3):
        if m1 <= m2 and m2 <= m3:
            assert m1 <= m3

    @given(bags, bags)
    def test_antisymmetric(self, m1, m2):
        if m1 <= m2 and m2 <= m1:
            assert m1 == m2


class TestElems:
    def test_elems_of_sequence(self):
        assert elems(("x", "y", "x")) == Multiset(["x", "x", "y"])

    def test_membership_definition(self):
        # "e in s iff elems(s)(e) > 0"
        s = ("a", "b")
        assert "a" in elems(s)
        assert "c" not in elems(s)

    @given(st.lists(st.integers(0, 3), max_size=8))
    def test_elems_length(self, items):
        assert len(elems(tuple(items))) == len(items)
