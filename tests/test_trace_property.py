"""Tests for trace properties, composition and projection (paper §3)."""

import pytest

from repro.core.actions import Signature, inv, res, sig_phase, swi
from repro.core.adt import consensus_adt, decide, propose
from repro.core.speculative import consensus_rinit
from repro.core.trace_property import (
    FiniteTraceProperty,
    IncompatibleSignatures,
    TraceProperty,
    compose,
    compose_finite,
    compose_signatures,
    lin_property,
    slin_property,
)
from repro.core.traces import Trace

P, D = propose, decide
CONS = consensus_adt()


def even_sig():
    return Signature(
        lambda a: isinstance(a, int) and a % 2 == 0,
        lambda a: isinstance(a, str),
        description="even-in str-out",
    )


class TestTraceProperty:
    def test_membership_requires_signature_actions(self):
        prop = TraceProperty(even_sig(), lambda t: True)
        assert prop.contains(Trace([2, "x"]))
        assert not prop.contains(Trace([3]))

    def test_membership_predicate(self):
        prop = TraceProperty(even_sig(), lambda t: len(t) <= 1)
        assert prop.contains(Trace([2]))
        assert not prop.contains(Trace([2, 4]))

    def test_in_operator(self):
        prop = TraceProperty(even_sig(), lambda t: True)
        assert Trace([2]) in prop


class TestFiniteTraceProperty:
    def test_explicit_traces(self):
        q = FiniteTraceProperty(even_sig(), [Trace([2]), Trace([4])])
        assert q.contains(Trace([2]))
        assert not q.contains(Trace([6]))

    def test_satisfies(self):
        # Q |= P iff Traces(Q) included in Traces(P).
        q = FiniteTraceProperty(even_sig(), [Trace([2])])
        p = TraceProperty(even_sig(), lambda t: all(x == 2 for x in t))
        p_narrow = TraceProperty(even_sig(), lambda t: len(t) == 0)
        assert q.satisfies(p)
        assert not q.satisfies(p_narrow)

    def test_projection_exact(self):
        q = FiniteTraceProperty(even_sig(), [Trace([2, "a", 4])])
        projected = q.project(lambda a: isinstance(a, str))
        assert Trace(["a"]) in projected.traces


class TestComposition:
    def test_composed_signature_classification(self):
        sig1 = sig_phase(1, 2)
        sig2 = sig_phase(2, 3)
        composed = compose_signatures(sig1, sig2)
        # The shared switch is an output of the composition (it is an
        # output of phase 1).
        assert composed.is_output(swi("c", 2, P("v"), "sv"))
        assert not composed.is_input(swi("c", 2, P("v"), "sv"))
        # Plain invocations stay inputs.
        assert composed.is_input(inv("c", 1, P("v")))
        assert composed.is_input(inv("c", 2, P("v")))

    def test_incompatible_outputs_detected(self):
        sig = sig_phase(1, 2)
        composed = compose_signatures(sig, sig)
        with pytest.raises(IncompatibleSignatures):
            composed.is_output(res("c", 1, P("v"), D("v")))

    def test_defining_property_of_composition(self):
        # t in P1 || P2 iff projections are in each component.
        rin = consensus_rinit(["v1", "v2"], max_extra=1)
        p1 = slin_property(1, 2, CONS, rin)
        p2 = slin_property(2, 3, CONS, rin)
        both = compose(p1, p2)
        good = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v1")),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v1"),
                res("c2", 2, P("v2"), D("v1")),
            ]
        )
        bad = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v2")),  # undecidable output
            ]
        )
        assert both.contains(good)
        assert not both.contains(bad)

    def test_property_1_composition_preserves_satisfaction(self):
        # Q1 |= P1 and Q2 |= P2 implies Q1 || Q2 |= P1 || P2, checked on
        # concrete finite systems.
        rin = consensus_rinit(["v1", "v2"], max_extra=1)
        p1 = slin_property(1, 2, CONS, rin)
        p2 = slin_property(2, 3, CONS, rin)

        t = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v1")),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v1"),
                res("c2", 2, P("v2"), D("v1")),
            ]
        )
        t12 = t.project(p1.signature.contains)
        t23 = t.project(p2.signature.contains)
        q1 = FiniteTraceProperty(p1.signature, [t12])
        q2 = FiniteTraceProperty(p2.signature, [t23])
        assert q1.satisfies(p1)
        assert q2.satisfies(p2)
        composed_system = compose_finite(q1, q2, [t])
        assert composed_system.satisfies(compose(p1, p2))
        assert t in composed_system.traces


class TestLinAndSLinProperties:
    def test_lin_property_membership(self):
        prop = lin_property(CONS)
        good = Trace([inv("c", 1, P("a")), res("c", 1, P("a"), D("a"))])
        bad = Trace([inv("c", 1, P("a")), res("c", 1, P("a"), D("b"))])
        assert prop.contains(good)
        assert not prop.contains(bad)

    def test_slin_property_membership(self):
        rin = consensus_rinit(["v1", "v2"], max_extra=1)
        prop = slin_property(1, 2, CONS, rin)
        good = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v1")),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v1"),
            ]
        )
        bad = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v1")),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v2"),
            ]
        )
        assert prop.contains(good)
        assert not prop.contains(bad)

    def test_slin_signature_scopes_membership(self):
        rin = consensus_rinit(["v1"], max_extra=1)
        prop = slin_property(2, 3, CONS, rin)
        # An action tagged outside [2..3) is not in the signature.
        stray = Trace([inv("c", 1, P("v1"))])
        assert not prop.contains(stray)
