"""Refinement and trace inclusion — the model-checked Theorem 3 (§6).

The centrepiece reproduces the paper's Isabelle result on small scopes:
the composition of two specification automata (with the connecting switch
actions hidden) is trace-included in a single specification automaton
spanning both phases.  Mutation tests confirm the checker would catch a
broken specification, so a green inclusion is meaningful.
"""

from repro.core.actions import Response, Switch
from repro.ioa import (
    ClientEnvironment,
    FunctionalAutomaton,
    SpecAutomaton,
    check_refinement_mapping,
    check_trace_inclusion,
    compose_automata,
    hide,
)
from repro.ioa.refinement import phase_tag_blind


def two_phase_impl(clients=("c1", "c2"), inputs=("a", "b"), budget=1):
    spec12 = SpecAutomaton(1, 2, clients)
    spec23 = SpecAutomaton(2, 3, clients)
    env = ClientEnvironment(clients, inputs, m=1, budget=budget)
    composed = compose_automata(spec12, spec23, env, name="impl")
    return hide(
        composed, lambda a: isinstance(a, Switch) and a.phase == 2
    )


class TestCompositionTheoremModelChecked:
    def test_two_clients_two_inputs(self):
        impl = two_phase_impl()
        spec = SpecAutomaton(1, 3, ("c1", "c2"))
        ok, cex, explored = check_trace_inclusion(
            impl, spec, normalize=phase_tag_blind
        )
        assert ok, str(cex)
        assert explored > 500

    def test_single_client_exhaustive(self):
        impl = two_phase_impl(clients=("c1",), inputs=("a", "b"), budget=2)
        spec = SpecAutomaton(1, 3, ("c1",))
        ok, cex, _ = check_trace_inclusion(
            impl, spec, normalize=phase_tag_blind
        )
        assert ok, str(cex)

    def test_three_phases_pairwise(self):
        # SLin(2,3) || SLin(3,4) refines SLin(2,4): the theorem at a
        # later phase index, where init actions are live.
        clients = ("c1",)
        spec23 = SpecAutomaton(2, 3, clients)
        spec34 = SpecAutomaton(3, 4, clients)
        from repro.ioa import InitEnvironment

        env = InitEnvironment(
            clients, m=2, init_histories=[("x",)], input_pool=("a",)
        )
        impl = hide(
            compose_automata(spec23, spec34, env),
            lambda a: isinstance(a, Switch) and a.phase == 3,
        )
        spec24 = SpecAutomaton(2, 4, clients)
        ok, cex, _ = check_trace_inclusion(
            impl, spec24, normalize=phase_tag_blind
        )
        assert ok, str(cex)


class TestMutationSensitivity:
    """A deliberately broken specification must be caught — otherwise a
    green inclusion check proves nothing."""

    def test_spec_without_a2_rejected(self):
        impl = two_phase_impl(clients=("c1",), inputs=("a",))

        class NoResponseSpec(SpecAutomaton):
            def transitions(self, state):
                for action, successor in super().transitions(state):
                    if not isinstance(action, Response):
                        yield action, successor

        spec = NoResponseSpec(1, 3, ("c1",))
        ok, cex, _ = check_trace_inclusion(
            impl, spec, normalize=phase_tag_blind
        )
        assert not ok
        assert isinstance(cex.action, Response)

    def test_spec_without_aborts_rejected(self):
        impl = two_phase_impl(clients=("c1",), inputs=("a",))

        class NoAbortSpec(SpecAutomaton):
            def transitions(self, state):
                for action, successor in super().transitions(state):
                    if not isinstance(action, Switch):
                        yield action, successor

        spec = NoAbortSpec(1, 3, ("c1",))
        ok, cex, _ = check_trace_inclusion(
            impl, spec, normalize=phase_tag_blind
        )
        assert not ok
        assert isinstance(cex.action, Switch)

    def test_impl_mutation_caught(self):
        # An implementation that invents outputs (responds with a history
        # not extending its own hist) escapes the spec.
        clients = ("c1",)

        class LyingSpec(SpecAutomaton):
            def transitions(self, state):
                for action, successor in super().transitions(state):
                    if isinstance(action, Response):
                        action = Response(
                            action.client,
                            action.phase,
                            action.input,
                            ("bogus",) + tuple(action.output),
                        )
                    yield action, successor

        env = ClientEnvironment(clients, ("a",), m=1, budget=1)
        impl = compose_automata(LyingSpec(1, 2, clients), env)
        spec = SpecAutomaton(1, 2, clients)
        ok, cex, _ = check_trace_inclusion(
            impl, spec, normalize=phase_tag_blind
        )
        assert not ok


class TestRefinementMapping:
    def test_identity_mapping_on_same_automaton(self):
        clients = ("c1",)
        auto = SpecAutomaton(1, 2, clients)
        env = ClientEnvironment(clients, ("a",), m=1, budget=1)
        impl = compose_automata(auto, env)
        ok, cex, explored = check_refinement_mapping(
            impl,
            auto,
            mapping=lambda state: state[0],
        )
        assert ok, str(cex)
        assert explored > 0

    def test_wrong_mapping_rejected(self):
        clients = ("c1",)
        auto = SpecAutomaton(1, 2, clients)
        env = ClientEnvironment(clients, ("a",), m=1, budget=1)
        impl = compose_automata(auto, env)
        frozen = next(iter(auto.initial_states()))
        ok, cex, _ = check_refinement_mapping(
            impl, auto, mapping=lambda state: frozen
        )
        assert not ok

    def test_toy_counter_refinement(self):
        # A mod-2 abstraction of a counter that only reports parity.
        def ticker(limit):
            def transitions(state):
                if state < limit:
                    yield ("parity", (state + 1) % 2), state + 1

            return FunctionalAutomaton(
                name="ticker",
                initial=[0],
                is_input=lambda a: False,
                is_output=lambda a: isinstance(a, tuple)
                and a[0] == "parity",
                is_internal=lambda a: False,
                transitions=transitions,
                input_step=lambda s, a: s,
            )

        def parity_machine():
            def transitions(state):
                yield ("parity", 1 - state), 1 - state

            return FunctionalAutomaton(
                name="parity",
                initial=[0],
                is_input=lambda a: False,
                is_output=lambda a: isinstance(a, tuple)
                and a[0] == "parity",
                is_internal=lambda a: False,
                transitions=transitions,
                input_step=lambda s, a: s,
            )

        ok, cex, _ = check_refinement_mapping(
            ticker(4), parity_machine(), mapping=lambda s: s % 2
        )
        assert ok, str(cex)
