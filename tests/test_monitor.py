"""The streaming linearizability monitor (`repro.monitor`).

Three contracts under test, mirroring docs/MONITORING.md:

* **agreement** — on any finite trace the streaming verdict must match
  the post-hoc :func:`~repro.core.fastcheck.check_linearizable`
  verdict *category* (ok / violation / unknown), including pending
  invocations, per-key partitioning and the budget-degraded case.
  Directed traces pin the interesting shapes; a Hypothesis sweep over
  well-formed random traces (honest and dishonest outputs) pins the
  equivalence in bulk.
* **bounded memory** — the retained-event gauge peaks at the size of
  the concurrent window, never the run length: decided prefixes are
  garbage-collected at every quiescent cut.
* **operational wiring** — fail-fast violation reporting with a
  ddmin-shrunken witness, resync-after-degrade, the async recorder
  tap, `loadgen --monitor` (single and sharded planes) and the chaos
  campaign's live monitor must all surface the same verdicts.
"""

import asyncio

from hypothesis import given, settings

from repro.core.actions import Invocation, Response
from repro.core.adt import register_adt
from repro.core.fastcheck import check_linearizable
from repro.core.strategies import wellformed_traces
from repro.core.traces import Trace
from repro.monitor import (
    MonitorTap,
    StreamingMonitor,
    compose_verdicts,
    ddmin_ops,
    watch_trace,
)
from repro.net.client import HistoryRecorder
from repro.net.loadgen import run_loadgen
from repro.smr.universal import kv_store_adt

SILENT = lambda line: None  # noqa: E731

KV = kv_store_adt()
KV_INPUTS = [
    ("put", "a", 1),
    ("put", "a", 2),
    ("get", "a"),
    ("delete", "a"),
    ("put", "b", 1),
    ("get", "b"),
]
REG = register_adt()
REG_INPUTS = [("write", 1), ("write", 2), ("read",)]


def inv(client, payload):
    return Invocation(client, 1, payload)


def res(client, payload, output):
    return Response(client, 1, payload, output)


def posthoc_verdict(trace, adt, **kwargs):
    check = check_linearizable(trace, adt, **kwargs)
    if check.unknown:
        return "unknown"
    return "ok" if check.ok else "violation"


# ---------------------------------------------------------------------------
# agreement with the post-hoc checker
# ---------------------------------------------------------------------------


class TestDirectedAgreement:
    def test_sequential_history_is_ok(self):
        trace = Trace(
            [
                inv("c1", ("put", "a", 1)),
                res("c1", ("put", "a", 1), ("value", None)),
                inv("c2", ("get", "a")),
                res("c2", ("get", "a"), ("value", 1)),
            ]
        )
        report = watch_trace(trace, KV)
        assert report.verdict == posthoc_verdict(trace, KV) == "ok"
        assert report.ok and report.frontiers == 1

    def test_stale_read_is_a_violation(self):
        trace = Trace(
            [
                inv("c1", ("put", "a", 1)),
                res("c1", ("put", "a", 1), ("value", None)),
                inv("c2", ("get", "a")),
                res("c2", ("get", "a"), ("value", None)),  # forgot the put
            ]
        )
        report = watch_trace(trace, KV)
        assert report.verdict == posthoc_verdict(trace, KV) == "violation"
        assert report.violation_key == "a"
        assert "frontier emptied" in report.reason

    def test_concurrent_overlap_allows_either_order(self):
        # the get overlaps the put: both old and new value linearize
        for read_value in (None, 7):
            trace = Trace(
                [
                    inv("c1", ("put", "a", 7)),
                    inv("c2", ("get", "a")),
                    res("c2", ("get", "a"), ("value", read_value)),
                    res("c1", ("put", "a", 7), ("value", None)),
                ]
            )
            assert watch_trace(trace, KV).verdict == "ok"
            assert posthoc_verdict(trace, KV) == "ok"

    def test_pending_invocations_stay_ok(self):
        trace = Trace(
            [
                inv("c1", ("put", "a", 1)),
                inv("c2", ("get", "a")),
                res("c2", ("get", "a"), ("value", 1)),  # c1's put took effect
            ]
        )
        report = watch_trace(trace, KV)
        assert report.verdict == posthoc_verdict(trace, KV) == "ok"

    def test_ill_formed_trace_is_rejected_like_posthoc(self):
        trace = Trace(
            [res("c1", ("get", "a"), ("value", None))]  # respond, no invoke
        )
        report = watch_trace(trace, KV)
        assert report.verdict == posthoc_verdict(trace, KV) == "violation"
        assert "well-formed" in report.reason

    def test_monolithic_adt_without_partition_spec(self):
        trace = Trace(
            [
                inv("c1", ("write", 1)),
                res("c1", ("write", 1), ("ok",)),
                inv("c2", ("read",)),
                res("c2", ("read",), ("value", 2)),  # never written
            ]
        )
        report = watch_trace(trace, REG)
        assert report.verdict == posthoc_verdict(trace, REG) == "violation"


class TestPropertyAgreement:
    @given(wellformed_traces(KV, KV_INPUTS, max_steps=14))
    @settings(max_examples=120, deadline=None)
    def test_kv_streaming_matches_posthoc(self, trace):
        # dishonest outputs: a mix of linearizable and violating traces,
        # partitioned per key — the P-compositional equivalence
        assert watch_trace(trace, KV).verdict == posthoc_verdict(trace, KV)

    @given(wellformed_traces(KV, KV_INPUTS, max_steps=14, honest=True))
    @settings(max_examples=60, deadline=None)
    def test_honest_kv_traces_are_always_ok(self, trace):
        report = watch_trace(trace, KV)
        assert report.verdict == posthoc_verdict(trace, KV) == "ok"

    @given(wellformed_traces(REG, REG_INPUTS, max_steps=12))
    @settings(max_examples=120, deadline=None)
    def test_register_streaming_matches_posthoc(self, trace):
        # no partition spec: the whole trace rides one frontier
        assert watch_trace(trace, REG).verdict == posthoc_verdict(trace, REG)


class TestBudgetsAndResync:
    def ambiguous_burst(self, n_open=5):
        """Five open puts, then a get answered by one of them: every
        speculative ordering of a put-subset ending in put-3 survives,
        so the frontier (and the post-hoc search) genuinely fans out."""
        actions = [inv(f"c{i}", ("put", "a", i + 1)) for i in range(n_open)]
        actions += [
            inv("cg", ("get", "a")),
            res("cg", ("get", "a"), ("value", 3)),
        ]
        # close the puts too, so the stream can quiesce for the resync
        # test; once degraded these land on the unchecked path
        actions += [
            res(f"c{i}", ("put", "a", i + 1), ("value", None))
            for i in range(n_open)
        ]
        return Trace(actions)

    def test_tiny_config_budget_degrades_to_unknown_like_posthoc(self):
        trace = self.ambiguous_burst()
        report = watch_trace(trace, KV, config_limit=2)
        assert report.verdict == "unknown"
        assert "budget" in report.reason
        # the post-hoc checker degrades the same way under its budget
        assert posthoc_verdict(trace, KV, state_limit=1) == "unknown"
        # ...and neither side guessed: with full budgets the same trace
        # has a definite verdict on both (here: violation — the get
        # pins put-3 first, yet every put claims the empty cell)
        assert (
            watch_trace(trace, KV).verdict
            == posthoc_verdict(trace, KV)
            == "violation"
        )

    def test_node_budget_degrades_per_event_search(self):
        report = watch_trace(self.ambiguous_burst(), KV, node_limit=3)
        assert report.verdict == "unknown"

    def test_resync_resumes_watching_from_a_snapshot(self):
        monitor = StreamingMonitor(KV, config_limit=2)
        for action in self.ambiguous_burst():
            monitor.observe(action)
        assert monitor.degraded and monitor.verdict == "unknown"
        # an operator hands the monitor an authoritative snapshot of
        # the cell ("a" holds 5); watching resumes at quiescence
        monitor.resync("a", 5)
        monitor.observe(inv("c9", ("get", "a")))
        monitor.observe(res("c9", ("get", "a"), ("value", 5)))
        # the verdict stays unknown (the gap is unobserved forever)...
        assert monitor.verdict == "unknown"
        # ...but new violations are still caught from the snapshot
        monitor.observe(inv("c9", ("get", "a")))
        monitor.observe(res("c9", ("get", "a"), ("value", 77)))
        assert monitor.verdict == "violation"


# ---------------------------------------------------------------------------
# the GC bound
# ---------------------------------------------------------------------------


class TestBoundedMemory:
    def test_long_sequential_run_retains_a_constant_window(self):
        monitor = StreamingMonitor(KV)
        value = None
        for i in range(2000):
            payload = ("put", "a", i)
            monitor.observe(inv("c1", payload))
            monitor.observe(res("c1", payload, ("value", value)))
            value = i
        report = monitor.report()
        assert report.verdict == "ok"
        assert report.events == 4000
        # one op in flight at a time: the window never holds more than
        # one op's events, and every decided prefix was collected
        assert report.peak_retained <= 2
        assert report.retained == 0
        assert report.gc_drops == 4000

    def test_peak_tracks_the_concurrent_window_not_the_run(self):
        monitor = StreamingMonitor(KV)
        clients = [f"c{i}" for i in range(6)]
        store = {}
        for round_no in range(300):
            batch = []
            for i, c in enumerate(clients):
                key = "ab"[i % 2]
                payload = ("put", key, round_no * 10 + i)
                monitor.observe(inv(c, payload))
                batch.append((c, key, payload))
            for c, key, payload in batch:
                output = ("value", store.get(key))
                store[key] = payload[2]
                monitor.observe(res(c, payload, output))
        report = monitor.report()
        assert report.verdict == "ok"
        assert report.events == 300 * len(clients) * 2
        # the bound depends on the 6-client window, not the 300 rounds
        assert report.peak_retained <= 4 * len(clients)
        assert report.gc_drops == report.events


# ---------------------------------------------------------------------------
# fail-fast and the shrunken witness
# ---------------------------------------------------------------------------


class TestFailFastAndWitness:
    def test_violation_fires_the_callback_at_the_event(self):
        seen = []
        monitor = StreamingMonitor(KV, on_violation=seen.append)
        monitor.observe(inv("c1", ("get", "a")))
        assert not monitor.violated and seen == []
        monitor.observe(res("c1", ("get", "a"), ("value", 3)))  # from nowhere
        assert monitor.violated
        assert len(seen) == 1 and seen[0].verdict == "violation"
        # later events are ignored, the verdict is final
        monitor.observe(inv("c2", ("put", "a", 1)))
        assert monitor.report().verdict == "violation"

    def test_witness_is_shrunk_to_the_relevant_ops(self):
        # two irrelevant committed ops on key "b" and four open puts on
        # "a" surround a failing read; ddmin must cut the noise down to
        # the read itself (no open op is needed to refute ("value", 9))
        actions = [
            inv("cb", ("put", "b", 1)),
            res("cb", ("put", "b", 1), ("value", None)),
        ]
        actions += [inv(f"c{i}", ("put", "a", i)) for i in range(4)]
        actions += [
            inv("cr", ("get", "a")),
            res("cr", ("get", "a"), ("value", 9)),  # 9 was never written
        ]
        report = watch_trace(Trace(actions), KV)
        assert report.verdict == "violation"
        witness = report.witness
        assert witness is not None and witness["partition"] == "a"
        assert witness["shrunk"] and not witness["truncated"]
        ops = {event["op"] for event in witness["events"]}
        # the failing read survives; the unrelated key never appears
        assert any(e["client"] == "cr" for e in witness["events"])
        assert len(ops) == 1

    def test_ddmin_minimizes_a_known_superset(self):
        fails = lambda kept: {"x", "y"} <= set(kept)  # noqa: E731
        assert set(ddmin_ops(["a", "x", "b", "y", "c"], fails)) == {"x", "y"}

    def test_compose_verdicts_prefers_violation_over_unknown(self):
        ok = watch_trace(Trace([]), KV)
        bad = watch_trace(
            Trace([res("c1", ("get", "a"), ("value", 1))]), KV
        )
        verdict, reason = compose_verdicts([ok, bad])
        assert verdict == "violation" and reason
        assert compose_verdicts([ok, ok])[0] == "ok"


# ---------------------------------------------------------------------------
# the async tap and the data-plane integrations
# ---------------------------------------------------------------------------


class TestMonitorTap:
    def test_tap_drains_recorder_events_in_background(self):
        async def scenario():
            tap = MonitorTap(StreamingMonitor(KV))
            recorder = HistoryRecorder(clock=lambda: 0.0, tap=tap)
            recorder.invoke("c1", ("put", "a", 1))
            recorder.respond("c1", ("put", "a", 1), ("value", None))
            await asyncio.sleep(0.01)
            assert tap.pending == 0  # the drain task consumed the queue
            recorder.invoke("c2", ("get", "a"))
            recorder.respond("c2", ("get", "a"), ("value", 1))
            return await tap.close()

        report = asyncio.run(scenario())
        assert report.verdict == "ok" and report.events == 4

    def test_tap_flags_violation_before_close(self):
        async def scenario():
            tap = MonitorTap(StreamingMonitor(KV))
            recorder = HistoryRecorder(clock=lambda: 0.0, tap=tap)
            recorder.invoke("c1", ("get", "a"))
            recorder.respond("c1", ("get", "a"), ("value", 41))
            await asyncio.sleep(0.01)
            assert tap.violated  # visible mid-run, before close()
            return await tap.close()

        assert asyncio.run(scenario()).verdict == "violation"


class TestLoadgenIntegration:
    def test_monitored_run_agrees_with_the_posthoc_check(self, tmp_path):
        report = run_loadgen(
            replicas=3,
            clients=4,
            ops=24,
            seed=5,
            wal_root=str(tmp_path),
            monitor=True,
            emit=SILENT,
        )
        assert report.monitored
        assert report.linearizable and report.monitor_verdict == "ok"
        assert report.monitor_events == 2 * report.committed
        assert 0 < report.monitor_peak_retained < report.monitor_events
        assert report.monitor_gc_drops == report.monitor_events

    def test_sharded_run_composes_per_shard_monitors(self, tmp_path):
        report = run_loadgen(
            replicas=3,
            clients=6,
            ops=48,
            seed=6,
            shards=2,
            codec="binary",
            wal_root=str(tmp_path),
            monitor=True,
            emit=SILENT,
        )
        assert report.monitored and report.monitor_verdict == "ok"
        assert report.monitor_shard_verdicts == ["ok", "ok"]
        assert report.linearizable
