"""Shared test utilities: trace builders and random trace generators."""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.core.actions import Invocation, Response, Switch
from repro.core.adt import ADT, decide, propose
from repro.core.traces import Trace


def mk_trace(*actions) -> Trace:
    """Build a trace from action objects."""
    return Trace(actions)


def consensus_trace(*events) -> Trace:
    """Compact consensus-trace builder.

    Events are tuples:
      ("p", client, value)            — propose invocation (phase 1)
      ("d", client, value, decided)   — decide response (phase 1)
      ("p2"/"d2", ...)                — the same at phase 2
      ("swi", client, value, sv, tag) — switch carrying propose(value)
    """
    actions = []
    for event in events:
        kind = event[0]
        if kind == "p":
            _, client, value = event
            actions.append(Invocation(client, 1, propose(value)))
        elif kind == "p2":
            _, client, value = event
            actions.append(Invocation(client, 2, propose(value)))
        elif kind == "d":
            _, client, value, decided = event
            actions.append(
                Response(client, 1, propose(value), decide(decided))
            )
        elif kind == "d2":
            _, client, value, decided = event
            actions.append(
                Response(client, 2, propose(value), decide(decided))
            )
        elif kind == "swi":
            _, client, value, sv, tag = event
            actions.append(Switch(client, tag, propose(value), sv))
        else:
            raise ValueError(f"unknown event {event!r}")
    return Trace(actions)


def random_wellformed_trace(
    rng: random.Random,
    adt: ADT,
    inputs: Sequence,
    n_clients: int = 3,
    n_steps: int = 8,
    honest_bias: float = 0.5,
) -> Trace:
    """A random well-formed (phase-1) trace over the given ADT inputs.

    With probability ``honest_bias`` a response carries the output of an
    atomic execution (a random linearization point at response time, i.e.
    the trace is built by running the ADT sequentially at response
    instants — always linearizable); otherwise the output is drawn from
    outputs the ADT could produce on random histories, which usually
    breaks linearizability.  This mix gives the equivalence tests both
    positive and negative instances.
    """
    clients = [f"c{i}" for i in range(n_clients)]
    open_input: Dict[str, Optional[object]] = {c: None for c in clients}
    state = adt.initial_state
    actions = []
    honest = rng.random() < honest_bias
    for _ in range(n_steps):
        client = rng.choice(clients)
        if open_input[client] is None:
            payload = rng.choice(list(inputs))
            actions.append(Invocation(client, 1, payload))
            open_input[client] = payload
        else:
            payload = open_input[client]
            if honest:
                state, output = adt.transition(state, payload)
            else:
                # Arbitrary plausible output: run the ADT on a random
                # history ending with this input.
                history = [
                    rng.choice(list(inputs))
                    for _ in range(rng.randrange(0, 3))
                ] + [payload]
                output = adt.output(tuple(history))
            actions.append(Response(client, 1, payload, output))
            open_input[client] = None
    return Trace(actions)


def random_linearizable_trace(
    rng: random.Random,
    adt: ADT,
    inputs: Sequence,
    n_clients: int = 3,
    n_steps: int = 8,
) -> Trace:
    """A random trace guaranteed linearizable (atomic at response time)."""
    return random_wellformed_trace(
        rng, adt, inputs, n_clients, n_steps, honest_bias=1.1
    )
