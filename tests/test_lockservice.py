"""Tests for the Chubby-style lock service (the paper's motivating app)."""

from repro.core.linearizability import is_linearizable
from repro.smr.lockservice import (
    LockService,
    acquire,
    holder,
    lock_table_adt,
    release,
)


def jitter(rng):
    return rng.uniform(0.5, 1.5)


class TestLockTableADT:
    def test_acquire_free_lock(self):
        adt = lock_table_adt()
        assert adt.output((acquire("L", "alice"),)) == ("granted", True)

    def test_acquire_held_lock_denied(self):
        adt = lock_table_adt()
        history = (acquire("L", "alice"), acquire("L", "bob"))
        assert adt.output(history) == ("granted", False)

    def test_release_by_holder(self):
        adt = lock_table_adt()
        history = (acquire("L", "alice"), release("L", "alice"))
        assert adt.output(history) == ("released", True)

    def test_release_by_stranger_denied(self):
        adt = lock_table_adt()
        history = (acquire("L", "alice"), release("L", "bob"))
        assert adt.output(history) == ("released", False)

    def test_reacquire_after_release(self):
        adt = lock_table_adt()
        history = (
            acquire("L", "alice"),
            release("L", "alice"),
            acquire("L", "bob"),
        )
        assert adt.output(history) == ("granted", True)

    def test_holder_query(self):
        adt = lock_table_adt()
        assert adt.output((acquire("L", "a"), holder("L"))) == ("holder", "a")
        assert adt.output((holder("M"),)) == ("holder", None)

    def test_independent_locks(self):
        adt = lock_table_adt()
        history = (acquire("L1", "a"), acquire("L2", "b"))
        assert adt.output(history) == ("granted", True)

    def test_validation(self):
        adt = lock_table_adt()
        assert adt.is_input(acquire("L", "a"))
        assert not adt.is_input(("acquire", "L"))
        assert adt.is_output(("granted", True))


class TestLockService:
    def test_sequential_handoff(self):
        svc = LockService(n_servers=3, seed=0)
        svc.acquire("alice", "L", at=0.0)
        svc.acquire("bob", "L", at=10.0)      # denied: alice holds it
        svc.release("alice", "L", at=20.0)
        svc.acquire("bob", "L", at=30.0)      # now granted
        svc.run()
        responses = [r.response for r in svc.results]
        assert responses == [
            ("granted", True),
            ("granted", False),
            ("released", True),
            ("granted", True),
        ]
        assert svc.table() == {"L": "bob"}

    def test_concurrent_race_exactly_one_winner(self):
        for seed in range(6):
            svc = LockService(n_servers=3, seed=seed, delay=jitter)
            for name in ("alice", "bob", "carol"):
                svc.acquire(name, "L", at=0.0)
            svc.run(until=2000.0)
            grants = [
                r for r in svc.results if r.response == ("granted", True)
            ]
            assert len(grants) == 1, seed
            assert svc.mutual_exclusion_holds()

    def test_interface_trace_linearizable(self):
        svc = LockService(n_servers=3, seed=2, delay=jitter)
        svc.acquire("alice", "L", at=0.0)
        svc.acquire("bob", "L", at=0.0)
        svc.holder_of("carol", "L", at=0.5)
        svc.run(until=2000.0)
        assert is_linearizable(svc.interface_trace(), lock_table_adt())

    def test_per_client_operations_serialized(self):
        svc = LockService(n_servers=3, seed=0)
        svc.acquire("alice", "L", at=0.0)
        svc.release("alice", "L", at=0.0)  # queued behind the acquire
        svc.run()
        assert [r.response for r in svc.results] == [
            ("granted", True),
            ("released", True),
        ]
        assert svc.table() == {}

    def test_crash_tolerance(self):
        svc = LockService(n_servers=3, seed=1)
        svc.smr.crash_server(0, at=0.0)
        svc.acquire("alice", "L", at=1.0)
        svc.run()
        assert svc.results[0].response == ("granted", True)
        assert svc.results[0].outcome.path == "slow"

    def test_mutual_exclusion_under_load(self):
        svc = LockService(n_servers=3, seed=4, delay=jitter)
        for i, name in enumerate(("a", "b", "c", "d")):
            svc.acquire(name, "L", at=0.2 * i)
        svc.release("a", "L", at=30.0)  # only matters if a won
        svc.run(until=3000.0)
        assert svc.mutual_exclusion_holds()
