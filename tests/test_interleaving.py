"""Tests for the interprocedural dataflow engine and the RD08 race pass.

Three layers, mirroring docs/ANALYSIS.md:

* the engine primitives — statement-level CFG construction
  (``repro.analysis.cfg``), the generic fixpoint solver
  (``repro.analysis.dataflow``) and the project call graph with
  may-suspend summaries (``repro.analysis.callgraph``);
* the rules built on them — RD08 (read-modify-write of shared state
  across an ``await``) with its known-bad fixtures and near-misses,
  the path-sensitive RD02 rewrite, and the suppression/baseline
  interplay over multi-line constructs;
* the runtime cross-check — the interleaving sanitizer
  (``repro.analysis.sanitizer``) unit-tested directly, the race mutant
  injected into a scratch copy of the real ``net/pipeline.py`` caught
  statically, and the live ``RacySlotPipeline`` campaign caught
  dynamically.
"""

import ast
import asyncio
import os
import textwrap

import pytest

from repro.analysis import (
    analyze_source,
    build_cfg,
    build_project,
    run_lint,
    solve,
    write_baseline,
)
from repro.analysis import sanitizer
from repro.analysis.baseline import BASELINE_NAME
from repro.analysis.callgraph import CallGraph
from repro.analysis.dataflow import SetUnionAnalysis
from repro.analysis.sanitizer import (
    InterleaveError,
    assert_no_interleave,
    atomic_section,
    interleave_token,
)

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(ROOT, "src")
PIPELINE_PY = os.path.join(SRC, "repro", "net", "pipeline.py")


def function_cfg(source, name=None):
    """Build the CFG of the first (or named) function in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    funcs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    func = (
        funcs[0]
        if name is None
        else next(f for f in funcs if f.name == name)
    )
    return build_cfg(func)


def deep_findings(source, relpath="repro/net/scratch.py"):
    """(active, suppressed) findings with a single-module project."""
    src = textwrap.dedent(source)
    project = build_project([(relpath, ast.parse(src))])
    return analyze_source(src, relpath, project=project)


def deep_rules_of(source, relpath="repro/net/scratch.py"):
    active, _ = deep_findings(source, relpath)
    return [finding.rule for finding in active]


# ----------------------------------------------------------------------
# the CFG builder
# ----------------------------------------------------------------------


def test_cfg_linear_statements_chain():
    cfg = function_cfg(
        """
        def f():
            a = 1
            b = a + 1
            return b
        """
    )
    stmts = list(cfg.statement_nodes())
    assert len(stmts) == 3
    # entry -> a -> b -> return -> exit, one path
    assert cfg.nodes[cfg.entry].succ == [stmts[0].index]
    assert stmts[0].succ == [stmts[1].index]
    assert stmts[1].succ == [stmts[2].index]
    assert stmts[2].succ == [cfg.exit]
    assert not cfg.has_suspension


def test_cfg_if_without_else_keeps_the_skip_path():
    """``if`` with no ``else`` must leave a fall-through edge — the

    path sensitivity RD02 relies on (the branch may not execute)."""
    cfg = function_cfg(
        """
        def f(x):
            if x:
                x = x + 1
            return x
        """
    )
    test = next(n for n in cfg.statement_nodes() if n.kind == "test")
    ret = next(
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)
    )
    body = next(
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Assign)
    )
    assert set(test.succ) == {body.index, ret.index}
    assert set(ret.pred) == {body.index, test.index}


def test_cfg_while_has_a_back_edge():
    cfg = function_cfg(
        """
        def f(x):
            while x:
                x = x - 1
            return x
        """
    )
    test = next(n for n in cfg.statement_nodes() if n.kind == "test")
    body = next(
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Assign)
    )
    assert test.index in body.succ  # loop back edge
    assert body.index in test.succ


def test_cfg_marks_awaits_as_suspensions():
    cfg = function_cfg(
        """
        async def f(self):
            x = 1
            await self.flush()
            return x
        """
    )
    assert cfg.has_suspension
    suspending = [n for n in cfg.statement_nodes() if n.suspensions]
    assert len(suspending) == 1
    assert suspending[0].suspensions[0].kind == "await"


def test_cfg_lock_shaped_with_marks_guarded_region():
    cfg = function_cfg(
        """
        async def f(self):
            async with self._lock:
                await self.flush()
            await self.other()
        """
    )
    stmts = [n for n in cfg.statement_nodes() if n.kind == "stmt"]
    inside = next(n for n in stmts if n.line == 4)  # await self.flush()
    outside = next(n for n in stmts if n.line == 5)  # await self.other()
    assert inside.guarded and inside.suspensions
    assert not outside.guarded and outside.suspensions


def test_cfg_atomic_section_marks_atomic_region():
    cfg = function_cfg(
        """
        def f(self):
            with atomic_section(self, "claim"):
                self.x = 1
            self.y = 2
        """
    )
    atomic = [
        n
        for n in cfg.statement_nodes()
        if n.atomic and isinstance(n.stmt, ast.Assign)
    ]
    assert len(atomic) == 1


# ----------------------------------------------------------------------
# the fixpoint solver
# ----------------------------------------------------------------------


class _AssignedNames(SetUnionAnalysis):
    """Forward may-analysis: names assigned on some path so far."""

    def transfer(self, node, fact):
        for expr in [node.stmt] if node.kind == "stmt" else []:
            if isinstance(expr, ast.Assign):
                for target in expr.targets:
                    if isinstance(target, ast.Name):
                        fact = fact | {target.id}
        return fact


def test_solver_joins_facts_over_branches_and_loops():
    cfg = function_cfg(
        """
        def f(flag):
            if flag:
                a = 1
            else:
                b = 2
            while flag:
                c = 3
            return 0
        """
    )
    _, exit_facts = solve(cfg, _AssignedNames())
    assert exit_facts[cfg.exit] == frozenset({"a", "b", "c"})
    # at the return, both branch facts have joined
    ret = next(
        n for n in cfg.statement_nodes() if isinstance(n.stmt, ast.Return)
    )
    entry_facts, _ = solve(cfg, _AssignedNames())
    assert {"a", "b"} <= set(entry_facts[ret.index])


# ----------------------------------------------------------------------
# the call graph: may-suspend summaries
# ----------------------------------------------------------------------


def callgraph_of(source):
    graph = CallGraph()
    graph.add_module("repro/net/scratch.py", ast.parse(textwrap.dedent(source)))
    graph.compute_summaries()
    return graph


def test_async_function_with_no_awaits_does_not_suspend():
    graph = callgraph_of(
        """
        async def noop():
            return 1
        """
    )
    assert graph.name_may_suspend("noop") is False


def test_suspension_propagates_through_the_call_chain():
    graph = callgraph_of(
        """
        import asyncio

        async def leaf():
            await asyncio.sleep(0)

        async def mid():
            await leaf()

        async def top():
            await mid()
        """
    )
    assert graph.name_may_suspend("leaf") is True
    assert graph.name_may_suspend("mid") is True
    assert graph.name_may_suspend("top") is True


def test_unknown_callee_is_conservatively_suspending():
    graph = callgraph_of("async def f():\n    return 1\n")
    assert graph.name_may_suspend("somewhere_else") is True


# ----------------------------------------------------------------------
# RD08: known-bad fixtures (the seeded canaries) and near-misses
# ----------------------------------------------------------------------

RD08_BAD = [
    # the classic: read, suspend, write the stale value back
    """
    class P:
        async def claim(self):
            slot = self._next_slot
            await self._flush()
            self._next_slot = slot + 1
            return slot
    """,
    # one statement that reads, awaits and writes back
    """
    class P:
        async def bump(self):
            self.total = self.total + await self._fetch()
    """,
    # module-global read-modify-write across an await
    """
    import asyncio

    PENDING = 0

    class P:
        async def tick(self):
            global PENDING
            count = PENDING
            await asyncio.sleep(0)
            PENDING = count + 1
    """,
    # stale arithmetic on an attribute snapshot
    """
    class P:
        async def drain(self):
            backlog = self.backlog
            await self._io()
            self.backlog = backlog - 1
    """,
]

RD08_GOOD = [
    # re-read after the suspension: the taint is re-validated
    """
    class P:
        async def claim(self):
            slot = self._next_slot
            await self._flush()
            slot = self._next_slot
            self._next_slot = slot + 1
            return slot
    """,
    # the whole window is under a lock-shaped guard
    """
    class P:
        async def claim(self):
            async with self._lock:
                slot = self._next_slot
                await self._flush()
                self._next_slot = slot + 1
            return slot
    """,
    # explicit runtime re-validation clears the crossing
    """
    from repro.analysis.sanitizer import assert_no_interleave

    class P:
        async def claim(self):
            slot = self._next_slot
            await self._flush()
            assert_no_interleave(self)
            self._next_slot = slot + 1
            return slot
    """,
    # the awaited helper provably cannot suspend (call-graph summary)
    """
    class P:
        async def _noop(self):
            return 1

        async def claim(self):
            slot = self._next_slot
            await self._noop()
            self._next_slot = slot + 1
            return slot
    """,
    # a test of the location re-validates before the write
    """
    class P:
        async def claim(self):
            slot = self._next_slot
            await self._flush()
            if self._next_slot != slot:
                return None
            self._next_slot = slot + 1
            return slot
    """,
]


@pytest.mark.parametrize("source", RD08_BAD)
def test_rd08_bad_fixture_is_caught(source):
    assert "RD08" in deep_rules_of(source)


@pytest.mark.parametrize("source", RD08_GOOD)
def test_rd08_near_miss_stays_clean(source):
    assert deep_rules_of(source) == []


def test_rd08_names_the_location_and_variable():
    active, _ = deep_findings(RD08_BAD[0])
    finding = next(f for f in active if f.rule == "RD08")
    assert "self._next_slot" in finding.message
    assert "'slot'" in finding.message
    assert "spans an await" in finding.message


def test_rd08_flags_await_inside_atomic_section():
    active, _ = deep_findings(
        """
        from repro.analysis.sanitizer import atomic_section

        class P:
            async def claim(self):
                with atomic_section(self, "slot-claim"):
                    slot = self._next_slot
                    await self._flush()
                    self._next_slot = slot + 1
        """
    )
    messages = [f.message for f in active if f.rule == "RD08"]
    assert any("atomic_section" in m for m in messages)


def test_rd08_requires_the_project_context():
    """Without ``--deep`` (no call graph) the rule does not run."""
    source = textwrap.dedent(RD08_BAD[0])
    active, _ = analyze_source(source, "repro/net/scratch.py")
    assert [f.rule for f in active] == []


def test_rd08_is_scoped_to_runtime_layers():
    """The same racy shape in an out-of-scope layer is not flagged."""
    assert deep_rules_of(RD08_BAD[0], "repro/faults/scratch.py") == []


# ----------------------------------------------------------------------
# RD02 as a path property (the typestate rewrite)
# ----------------------------------------------------------------------


def test_rd02_flags_reply_reachable_on_an_append_free_path():
    """One branch replies without persisting: only a path-sensitive

    analysis sees that the append does not dominate the reply."""
    active, _ = deep_findings(
        """
        class Hasty(_DurableRole):
            durable_attrs = ("value",)

            def on_message(self, src, msg):
                if msg[0] == "read":
                    super().send(src, ("value", self.value))
                    return
                self._wal.record(("set", msg[1]))
                self.value = msg[1]
                super().send(src, ("ok", msg[1]))
        """
    )
    rd02 = [f for f in active if f.rule == "RD02"]
    assert len(rd02) == 1
    assert "before the WAL append" in rd02[0].message


def test_rd02_every_path_persisting_is_clean():
    active, _ = deep_findings(
        """
        class Careful(_DurableRole):
            durable_attrs = ("value",)

            def on_message(self, src, msg):
                if msg[0] == "read":
                    self._wal.record(("read", msg[1]))
                    super().send(src, ("value", self.value))
                    return
                self._wal.record(("set", msg[1]))
                self.value = msg[1]
                super().send(src, ("ok", msg[1]))
        """
    )
    assert [f.rule for f in active] == []


# ----------------------------------------------------------------------
# suppression interplay: multi-line constructs, file-level, baseline
# ----------------------------------------------------------------------


def test_inline_disable_on_first_line_of_multiline_write():
    active, suppressed = deep_findings(
        """
        class P:
            async def claim(self):
                slot = self._next_slot
                await self._flush()
                self._next_slot = (  # repro: disable=RD08
                    slot + 1
                )
        """
    )
    assert active == []
    assert [f.rule for f in suppressed] == ["RD08"]


def test_inline_disable_on_last_line_of_multiline_write():
    """The finding spans line..end_line; a disable anywhere in the

    span silences it — trailing comments on the closing paren work."""
    active, suppressed = deep_findings(
        """
        class P:
            async def claim(self):
                slot = self._next_slot
                await self._flush()
                self._next_slot = (
                    slot + 1
                )  # repro: disable=RD08
        """
    )
    assert active == []
    assert [f.rule for f in suppressed] == ["RD08"]
    assert suppressed[0].end_line > suppressed[0].line


def test_file_level_disable_silences_the_whole_module():
    active, suppressed = deep_findings(
        """
        # repro: disable-file=RD08
        class P:
            async def claim(self):
                slot = self._next_slot
                await self._flush()
                self._next_slot = slot + 1
        """
    )
    assert active == []
    assert [f.rule for f in suppressed] == ["RD08"]


def test_file_level_disable_is_rule_specific():
    active, suppressed = deep_findings(
        """
        # repro: disable-file=RD01
        class P:
            async def claim(self):
                slot = self._next_slot
                await self._flush()
                self._next_slot = slot + 1
        """
    )
    assert [f.rule for f in active] == ["RD08"]
    assert suppressed == []


def _write_tree(root, files):
    for relpath, source in files.items():
        path = os.path.join(root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(source)


def test_suppressed_findings_never_consume_baseline_slots(tmp_path):
    """Inline suppressions and the baseline compose: a suppressed

    finding is not written to (or absorbed by) the baseline, so
    removing the comment later surfaces it as *new*."""
    racy = textwrap.dedent(
        """
        class P:
            async def a(self):
                x = self.n
                await self.io()
                self.n = x + 1

            async def b(self):
                y = self.m
                await self.io()
                self.m = y + 1  # repro: disable=RD08
        """
    )
    tree = str(tmp_path / "tree")
    _write_tree(tree, {"repro/net/racy.py": racy})
    baseline_file = str(tmp_path / BASELINE_NAME)

    report = run_lint([tree], baseline_path=baseline_file, deep=True)
    assert len(report.findings) == 1  # only the unsuppressed one
    assert len(report.suppressed) == 1

    write_baseline(baseline_file, report.all_findings())
    report = run_lint([tree], baseline_path=baseline_file, deep=True)
    assert report.clean
    assert len(report.baselined) == 1
    assert len(report.suppressed) == 1

    # Dropping the suppression exposes a finding the baseline does not
    # cover — it must be reported, not silently absorbed.
    _write_tree(
        tree,
        {"repro/net/racy.py": racy.replace("  # repro: disable=RD08", "")},
    )
    report = run_lint([tree], baseline_path=baseline_file, deep=True)
    assert len(report.findings) == 1
    assert len(report.baselined) == 1
    assert report.suppressed == []


# ----------------------------------------------------------------------
# the injected race mutant: a scratch copy of the real pipeline
# ----------------------------------------------------------------------

RACY_CLAIM = '''\
    async def _racy_claim(self) -> int:
        slot = self._next_slot
        await asyncio.sleep(0)
        self._next_slot = slot + 1
        return slot

'''

PIPELINE_ANCHOR = "    def _scheduled_pump(self) -> None:"


def test_race_mutant_in_pipeline_copy_is_caught(tmp_path):
    """Textually inject the racy claim into a copy of the *real*

    ``net/pipeline.py``: deep lint must flag the mutant and stay
    silent on the pristine copy (the end-to-end RD08 canary)."""
    with open(PIPELINE_PY) as handle:
        source = handle.read()
    assert PIPELINE_ANCHOR in source

    tree = str(tmp_path / "tree")
    _write_tree(tree, {"repro/net/pipeline.py": source})
    report = run_lint([tree], deep=True)
    assert report.findings == [], "\n" + report.to_text()

    mutated = source.replace(PIPELINE_ANCHOR, RACY_CLAIM + PIPELINE_ANCHOR)
    assert mutated != source
    _write_tree(tree, {"repro/net/pipeline.py": mutated})
    report = run_lint([tree], deep=True)
    rd08 = [f for f in report.findings if f.rule == "RD08"]
    assert len(rd08) == 1
    assert "self._next_slot" in rd08[0].message
    assert rd08[0].path == "repro/net/pipeline.py"


# ----------------------------------------------------------------------
# the runtime sanitizer
# ----------------------------------------------------------------------


@pytest.fixture
def armed():
    """The sanitizer, enabled and clean, restored after the test."""
    was = sanitizer.enabled()
    sanitizer.reset()
    sanitizer.enable()
    yield sanitizer
    if not was:
        sanitizer.disable()
    sanitizer.reset()


def test_sanitizer_is_a_noop_when_disabled():
    assert not sanitizer.enabled()
    obj = object()
    with atomic_section(obj, "crit"):
        assert_no_interleave(obj)
    assert interleave_token(obj) is None
    assert sanitizer.violations() == []


def test_intruding_task_raises_and_is_recorded(armed):
    obj = object()

    async def scenario():
        async def holder():
            with atomic_section(obj, "crit"):
                await asyncio.sleep(0.05)

        async def intruder():
            await asyncio.sleep(0.01)
            with atomic_section(obj, "crit"):
                pass

        t1 = asyncio.get_running_loop().create_task(holder(), name="holder")
        t2 = asyncio.get_running_loop().create_task(
            intruder(), name="intruder"
        )
        await asyncio.gather(t1, t2)

    with pytest.raises(InterleaveError):
        asyncio.run(scenario())
    violations = sanitizer.violations()
    assert len(violations) == 1
    assert violations[0].holder == "holder"
    assert violations[0].intruder == "intruder"
    assert "crit" in violations[0].format()


def test_same_task_reentry_is_allowed(armed):
    obj = object()
    with atomic_section(obj, "crit"):
        with atomic_section(obj, "crit"):
            pass
    assert sanitizer.violations() == []


def test_decorator_guards_the_whole_async_call(armed):
    class Counter:
        def __init__(self):
            self.value = 0

        @atomic_section
        async def bump(self):
            claimed = self.value
            await asyncio.sleep(0.02)
            self.value = claimed + 1

    counter = Counter()

    async def scenario():
        await asyncio.gather(counter.bump(), counter.bump())

    with pytest.raises(InterleaveError):
        asyncio.run(scenario())
    assert len(sanitizer.violations()) == 1


def test_token_detects_a_generation_bump(armed):
    obj = object()
    token = interleave_token(obj)
    assert_no_interleave(obj, token)  # nothing happened yet
    with atomic_section(obj, "crit"):
        pass  # a fresh entry bumps the owner's generation
    with pytest.raises(InterleaveError):
        assert_no_interleave(obj, token)
    assert len(sanitizer.violations()) == 1


def test_reset_clears_recorded_violations(armed):
    obj = object()
    token = interleave_token(obj)
    with atomic_section(obj, "crit"):
        pass
    with pytest.raises(InterleaveError):
        assert_no_interleave(obj, token)
    sanitizer.reset()
    assert sanitizer.violations() == []


# ----------------------------------------------------------------------
# the live cross-check: RacySlotPipeline under the armed sanitizer
# ----------------------------------------------------------------------


def _quiet_campaign(**kwargs):
    from repro.faults import run_net_campaign
    from repro.faults.netcampaign import NetSchedule

    return run_net_campaign(
        schedules=[NetSchedule(seed=3, actions=(), horizon=1.0)],
        ops_per_client=3,
        shrink=False,
        emit=lambda *_: None,
        **kwargs,
    )


def test_race_mutant_campaign_is_caught_live():
    report = _quiet_campaign(race_mutant=True, sanitize=True)
    run = report.runs[0]
    assert run.race_mutant and run.sanitized
    assert run.sanitizer_caught
    assert run.sanitizer_violations > 0
    assert run.to_jsonable()["sanitizer_violations"] > 0
    assert "race-mutant" in run.line() and "sanitizer=" in run.line()


def test_clean_pipeline_records_no_interleavings():
    report = _quiet_campaign(pipelined=True, sanitize=True)
    run = report.runs[0]
    assert run.sanitized and not run.race_mutant
    assert run.sanitizer_violations == 0
    assert not run.sanitizer_caught
