"""Tests for the paper's new definition of linearizability (Section 4)."""

import pytest

from repro.core.actions import inv, res
from repro.core.adt import (
    consensus_adt,
    decide,
    deq,
    enq,
    propose,
    queue_adt,
    reg_read,
    reg_write,
    register_adt,
)
from repro.core.linearizability import (
    SearchBudgetExceeded,
    check_linearization_function,
    is_linearizable,
    lin_trace_property_contains,
    linearize,
)
from repro.core.traces import Trace

P, D = propose, decide
CONS = consensus_adt()


class TestPaperExamples:
    def test_section_2_2_positive_example(self):
        # c1 proposes v1, c2 proposes v2, c2 returns v2, c1 returns v2.
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c2", 1, P("v2"), D("v2")),
                res("c1", 1, P("v1"), D("v2")),
            ]
        )
        result = linearize(t, CONS)
        assert result.ok
        # The paper's witness: [p(v2)] for c2 and [p(v2), p(v1)] for c1.
        assert result.witness[2] == (P("v2"),)
        assert result.witness[3] == (P("v2"), P("v1"))

    def test_section_2_2_negative_split_decisions(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v2")),
            ]
        )
        assert not is_linearizable(t, CONS)

    def test_section_2_2_negative_future_value(self):
        # c1 decides v2 before v2 is proposed.
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v2")),
                inv("c2", 1, P("v2")),
                res("c2", 1, P("v2"), D("v2")),
            ]
        )
        assert not is_linearizable(t, CONS)

    def test_example_2_of_section_4(self):
        # The generic Example 2 trace with explicit witness g.
        t = Trace(
            [
                inv("c", 1, P("a")),
                inv("c2", 1, P("b")),
                res("c2", 1, P("b"), CONS.output((P("b"),))),
                res("c", 1, P("a"), CONS.output((P("b"), P("a")))),
            ]
        )
        g = {2: (P("b"),), 3: (P("b"), P("a"))}
        assert check_linearization_function(t, g, CONS).ok


class TestDefinitionalChecks:
    def test_witness_must_explain(self):
        t = Trace([inv("c", 1, P("a")), res("c", 1, P("a"), D("a"))])
        bad = {1: (P("b"), P("a"))}  # f = d(b) != d(a)
        result = check_linearization_function(t, bad, CONS)
        assert not result.ok and "explain" in result.reason

    def test_witness_must_end_with_own_input(self):
        t = Trace(
            [
                inv("c", 1, P("a")),
                inv("d", 1, P("a")),
                res("c", 1, P("a"), D("a")),
            ]
        )
        bad = {2: (P("a"), P("b"))}
        result = check_linearization_function(t, bad, CONS)
        assert not result.ok

    def test_witness_validity_multiset(self):
        # g may not use more copies of an input than were invoked.
        t = Trace([inv("c", 1, P("a")), res("c", 1, P("a"), D("a"))])
        bad = {1: (P("a"), P("a"))}
        result = check_linearization_function(t, bad, CONS)
        assert not result.ok and "invoked" in result.reason

    def test_witness_commit_order(self):
        t = Trace(
            [
                inv("c", 1, P("a")),
                inv("d", 1, P("b")),
                res("c", 1, P("a"), D("a")),
                res("d", 1, P("b"), D("b")),
            ]
        )
        bad = {2: (P("a"),), 3: (P("b"),)}
        result = check_linearization_function(t, bad, CONS)
        assert not result.ok and "Commit Order" in result.reason

    def test_witness_missing_index(self):
        t = Trace([inv("c", 1, P("a")), res("c", 1, P("a"), D("a"))])
        result = check_linearization_function(t, {}, CONS)
        assert not result.ok and "undefined" in result.reason

    def test_witness_empty_history_rejected(self):
        t = Trace([inv("c", 1, P("a")), res("c", 1, P("a"), D("a"))])
        result = check_linearization_function(t, {1: ()}, CONS)
        assert not result.ok

    def test_search_witness_revalidates(self):
        t = Trace(
            [
                inv("c1", 1, P("x")),
                res("c1", 1, P("x"), D("x")),
                inv("c2", 1, P("y")),
                res("c2", 1, P("y"), D("x")),
            ]
        )
        result = linearize(t, CONS)
        assert result.ok
        assert check_linearization_function(t, result.witness, CONS).ok


class TestSearchBehaviour:
    def test_empty_trace(self):
        assert is_linearizable(Trace(), CONS)

    def test_invocation_only(self):
        assert is_linearizable(Trace([inv("c", 1, P("a"))]), CONS)

    def test_malformed_trace_rejected(self):
        t = Trace([res("c", 1, P("a"), D("a"))])
        result = linearize(t, CONS)
        assert not result.ok and "well-formed" in result.reason

    def test_invalid_input_payload(self):
        t = Trace([inv("c", 1, ("junk",)), res("c", 1, ("junk",), D("a"))])
        assert not linearize(t, CONS).ok

    def test_pending_invocation_effect_visible(self):
        # A pending proposal may be linearized before a completed one.
        t = Trace(
            [
                inv("c1", 1, P("a")),  # pending forever
                inv("c2", 1, P("b")),
                res("c2", 1, P("b"), D("a")),
            ]
        )
        result = linearize(t, CONS)
        assert result.ok
        assert result.witness[2] == (P("a"), P("b"))

    def test_out_of_order_commits(self):
        # The later response commits earlier in the linearization.
        adt = register_adt()
        t = Trace(
            [
                inv("w", 1, reg_write(1)),
                inv("r", 1, reg_read()),
                res("w", 1, reg_write(1), ("ok",)),
                res("r", 1, reg_read(), ("value", None)),
            ]
        )
        # The read overlaps the write and returns the pre-write value:
        # it must commit before the write despite responding after.
        assert is_linearizable(t, adt)

    def test_register_stale_read_rejected(self):
        adt = register_adt()
        t = Trace(
            [
                inv("w", 1, reg_write(1)),
                res("w", 1, reg_write(1), ("ok",)),
                inv("r", 1, reg_read()),
                res("r", 1, reg_read(), ("value", None)),
            ]
        )
        # The read starts after the write completed: None is stale.
        assert not is_linearizable(t, adt)

    def test_queue_example(self):
        adt = queue_adt()
        t = Trace(
            [
                inv("a", 1, enq(1)),
                inv("b", 1, enq(2)),
                res("a", 1, enq(1), ("ok",)),
                res("b", 1, enq(2), ("ok",)),
                inv("a", 1, deq()),
                res("a", 1, deq(), ("value", 2)),
            ]
        )
        # Overlapping enqueues may linearize in either order, so
        # dequeuing 2 first is allowed.
        assert is_linearizable(t, adt)

    def test_queue_wrong_element(self):
        adt = queue_adt()
        t = Trace(
            [
                inv("a", 1, enq(1)),
                res("a", 1, enq(1), ("ok",)),
                inv("b", 1, enq(2)),
                res("b", 1, enq(2), ("ok",)),
                inv("a", 1, deq()),
                res("a", 1, deq(), ("value", 2)),
            ]
        )
        # enq(1) strictly precedes enq(2): dequeuing 2 first is wrong.
        assert not is_linearizable(t, adt)

    def test_repeated_inputs_allowed(self):
        # Two clients propose the same value; duplicates are the norm.
        t = Trace(
            [
                inv("c1", 1, P("v")),
                inv("c2", 1, P("v")),
                res("c1", 1, P("v"), D("v")),
                res("c2", 1, P("v"), D("v")),
            ]
        )
        assert is_linearizable(t, CONS)

    def test_node_limit(self):
        actions = []
        for i in range(6):
            actions.append(inv(f"c{i}", 1, P(f"v{i}")))
        for i in range(6):
            actions.append(res(f"c{i}", 1, P(f"v{i}"), D("v0")))
        t = Trace(actions)
        with pytest.raises(SearchBudgetExceeded):
            linearize(t, CONS, node_limit=1)

    def test_master_is_longest_commit_history(self):
        t = Trace(
            [
                inv("c1", 1, P("x")),
                res("c1", 1, P("x"), D("x")),
                inv("c2", 1, P("y")),
                res("c2", 1, P("y"), D("x")),
            ]
        )
        result = linearize(t, CONS)
        assert result.master == (P("x"), P("y"))


class TestLinTraceProperty:
    def test_accepts_linearizable_consensus_trace(self):
        t = Trace([inv("c", 1, P("a")), res("c", 1, P("a"), D("a"))])
        assert lin_trace_property_contains(t, CONS)

    def test_rejects_switch_actions(self):
        from repro.core.actions import swi

        t = Trace([inv("c", 1, P("a")), swi("c", 2, P("a"), "v")])
        assert not lin_trace_property_contains(t, CONS)

    def test_rejects_foreign_payloads(self):
        t = Trace([inv("c", 1, ("alien",))])
        assert not lin_trace_property_contains(t, CONS)
