"""Tests for the shipped hypothesis strategies (and through them, more
property coverage of the checkers)."""

from hypothesis import given, settings

from repro.core.adt import (
    consensus_adt,
    deq,
    enq,
    propose,
    queue_adt,
)
from repro.core.classical import is_linearizable_classical
from repro.core.linearizability import is_linearizable
from repro.core.speculative import consensus_rinit, is_speculatively_linearizable
from repro.core.strategies import (
    consensus_phase_traces,
    linearizable_traces,
    wellformed_traces,
)
from repro.core.traces import is_phase_wellformed, is_wellformed

CONS = consensus_adt()
QUEUE = queue_adt()
RIN = consensus_rinit(["a", "b"], max_extra=1)


@settings(max_examples=60, deadline=None)
@given(wellformed_traces(CONS, [propose("a"), propose("b")]))
def test_generated_traces_are_wellformed(trace):
    assert is_wellformed(trace)


@settings(max_examples=60, deadline=None)
@given(linearizable_traces(CONS, [propose("a"), propose("b")]))
def test_honest_traces_are_linearizable(trace):
    assert is_linearizable(trace, CONS)
    assert is_linearizable_classical(trace, CONS)


@settings(max_examples=40, deadline=None)
@given(linearizable_traces(QUEUE, [enq(1), enq(2), deq()]))
def test_honest_queue_traces_are_linearizable(trace):
    assert is_linearizable(trace, QUEUE)


@settings(max_examples=60, deadline=None)
@given(wellformed_traces(CONS, [propose("a"), propose("b")]))
def test_checkers_agree_on_generated_traces(trace):
    # Theorem 1 again, through the shipped strategies.
    assert is_linearizable(trace, CONS) == is_linearizable_classical(
        trace, CONS
    )


@settings(max_examples=60, deadline=None)
@given(consensus_phase_traces())
def test_phase_traces_are_phase_wellformed(trace):
    assert is_phase_wellformed(trace, 1, 2)


@settings(max_examples=40, deadline=None)
@given(consensus_phase_traces(max_steps=6))
def test_slin_is_decided_on_phase_traces(trace):
    # The checker terminates with a boolean on every generated trace
    # (no exceptions) — and SLin implies plain linearizability of the
    # response-only projection (Theorem 2 direction).
    verdict = is_speculatively_linearizable(trace, 1, 2, CONS, RIN)
    if verdict:
        from repro.core.traces import strip_phase_tags

        assert is_linearizable(strip_phase_tags(trace), CONS)


def test_strategy_mix_is_informative():
    # Sample the phase-trace strategy: it must produce both accepted and
    # rejected instances to be a useful test distribution.
    from hypothesis import find

    def accepted(t):
        return len(t) > 2 and is_speculatively_linearizable(
            t, 1, 2, CONS, RIN
        )

    def rejected(t):
        return len(t) > 2 and not is_speculatively_linearizable(
            t, 1, 2, CONS, RIN
        )

    assert find(consensus_phase_traces(), accepted) is not None
    assert find(consensus_phase_traces(), rejected) is not None
