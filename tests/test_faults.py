"""Tests for the nemesis layer: fault primitives, schedules, campaigns.

Covers the network-level fault machinery (partitions, bursts, storms,
spikes and their composition), the declarative fault-schedule vocabulary
and its seeded generator, the delta-debugging shrinker, and the campaign
runner — including the end-to-end requirement that duplication storms
and healing partitions never break linearizability, and that message
loss plus a crash during the Backup phase is ridden out by the adaptive
backoff.
"""

import pytest

from repro.core.linearizability import linearize
from repro.core.traces import strip_phase_tags
from repro.faults import (
    BurstLoss,
    CrashServer,
    DelaySpike,
    DuplicationStorm,
    FaultSchedule,
    PartitionServers,
    RecoverServer,
    random_schedule,
    run_campaign,
    shrink_schedule,
)
from repro.faults.campaign import (
    CAMPAIGN_BACKOFF,
    CONSENSUS,
    ComposedTarget,
    SMRTarget,
    _ConsensusAdapter,
)
from repro.mp.backoff import BackoffPolicy
from repro.mp.composed import ComposedConsensus
from repro.mp.sim import Network, Process, Simulator


class Sink(Process):
    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, src, message):
        self.received.append(message)


def tiny_network():
    sim = Simulator()
    network = Network(sim)
    a = network.register(Sink("a"))
    b = network.register(Sink("b"))
    return sim, network, a, b


class TestFaultPrimitives:
    def test_crash_at_unregistered_pid_raises_at_schedule_time(self):
        _, network, _, _ = tiny_network()
        with pytest.raises(ValueError, match="unregistered.*ghost"):
            network.crash_at("ghost", 5.0)

    def test_recover_at_unregistered_pid_raises_at_schedule_time(self):
        _, network, _, _ = tiny_network()
        with pytest.raises(ValueError, match="unregistered"):
            network.recover_at("ghost", 5.0)

    def test_partition_must_end_after_start(self):
        _, network, _, _ = tiny_network()
        with pytest.raises(ValueError, match="end after"):
            network.partition(["a"], None, start=5.0, end=5.0)

    def test_partition_needs_a_side(self):
        _, network, _, _ = tiny_network()
        with pytest.raises(ValueError, match="group_a"):
            network.partition(None, None, start=0.0, end=5.0)

    def test_overlapping_partitions_count_once_per_send(self):
        sim, network, a, b = tiny_network()
        # Two scheduled cuts cover the same link over the same window.
        network.partition(["a"], None, start=0.0, end=10.0)
        network.partition(["a"], ["b"], start=0.0, end=10.0)
        sim.schedule(1.0, lambda: a.send("b", "m"))
        sim.run()
        assert network.stats.partitioned == 1
        assert network.stats.sent == 1
        assert b.received == []

    def test_one_way_partition_blocks_only_outbound(self):
        sim, network, a, b = tiny_network()
        network.partition(["a"], None, start=0.0, end=10.0, symmetric=False)
        sim.schedule(1.0, lambda: a.send("b", "from-a"))
        sim.schedule(1.0, lambda: b.send("a", "from-b"))
        sim.run()
        assert b.received == []
        assert a.received == ["from-b"]

    def test_partition_heals(self):
        sim, network, a, b = tiny_network()
        network.partition(["a"], None, start=0.0, end=5.0)
        sim.schedule(1.0, lambda: a.send("b", "cut"))
        sim.schedule(6.0, lambda: a.send("b", "healed"))
        sim.run()
        assert b.received == ["healed"]

    def test_predicate_partition_covers_late_registrations(self):
        sim, network, a, b = tiny_network()
        network.partition(
            lambda pid: isinstance(pid, str) and pid.startswith("late"),
            None,
            start=0.0,
            end=10.0,
        )
        late = network.register(Sink("late-1"))
        sim.schedule(1.0, lambda: late.send("b", "m"))
        sim.run()
        assert b.received == []

    def test_burst_windows_compose_additively_and_restore(self):
        _, network, _, _ = tiny_network()
        first = BurstLoss(at=0.0, duration=10.0, rate=0.3)
        second = BurstLoss(at=0.0, duration=10.0, rate=0.2)
        first._open(network)
        second._open(network)
        assert network.effective_loss_rate == pytest.approx(0.5)
        first._close(network)
        second._close(network)
        assert network.effective_loss_rate == 0.0

    def test_delay_spikes_compose_multiplicatively_and_restore(self):
        _, network, _, _ = tiny_network()
        spike = DelaySpike(at=0.0, duration=10.0, factor=4.0)
        spike._open(network)
        assert network._sample_delay() == pytest.approx(4.0)
        spike._close(network)
        assert network._sample_delay() == pytest.approx(1.0)

    def test_duplication_storm_restores_baseline(self):
        _, network, _, _ = tiny_network()
        storm = DuplicationStorm(at=0.0, duration=10.0, rate=0.5)
        storm._open(network)
        assert network.effective_duplicate_rate == pytest.approx(0.5)
        storm._close(network)
        assert network.effective_duplicate_rate == 0.0


class TestFaultSchedules:
    def test_same_seed_same_schedule(self):
        one = random_schedule(seed=42, n_servers=3)
        two = random_schedule(seed=42, n_servers=3)
        assert one == two

    def test_different_seeds_differ_somewhere(self):
        schedules = {random_schedule(seed=s, n_servers=3) for s in range(20)}
        assert len(schedules) > 1

    def test_describe_is_a_replayable_line(self):
        schedule = random_schedule(seed=7, n_servers=3)
        line = schedule.describe()
        assert "seed=7" in line
        assert "horizon=" in line
        for action in schedule.actions:
            assert type(action).__name__ in line

    def test_subset_preserves_seed_and_horizon(self):
        schedule = random_schedule(seed=7, n_servers=3)
        sub = schedule.subset([0])
        assert sub.seed == schedule.seed
        assert sub.horizon == schedule.horizon
        assert sub.actions == schedule.actions[:1]

    def test_actions_sorted_by_time(self):
        for seed in range(30):
            schedule = random_schedule(seed=seed, n_servers=3)
            times = [a.at for a in schedule.actions]
            assert times == sorted(times)

    def test_at_most_a_minority_is_stopped_for_good(self):
        for seed in range(200):
            schedule = random_schedule(seed=seed, n_servers=3)
            down = set()
            for action in schedule.actions:
                if isinstance(action, CrashServer):
                    down.add(action.server)
                elif isinstance(action, RecoverServer):
                    down.discard(action.server)
            assert len(down) <= 1, (seed, schedule.describe())

    def test_generator_respects_allow_list(self):
        schedule = random_schedule(
            seed=3, n_servers=3, allow=(BurstLoss, DelaySpike)
        )
        assert all(
            isinstance(a, (BurstLoss, DelaySpike))
            for a in schedule.actions
        )

    def test_fault_classes_sorted_and_deduplicated(self):
        schedule = FaultSchedule(
            seed=0,
            actions=(
                BurstLoss(at=1.0),
                CrashServer(at=2.0),
                BurstLoss(at=3.0),
            ),
        )
        assert schedule.fault_classes() == ("BurstLoss", "CrashServer")
        assert FaultSchedule(seed=0).fault_classes() == ("None",)


class TestShrinker:
    def make(self, n=6):
        return FaultSchedule(
            seed=0,
            actions=tuple(BurstLoss(at=float(i)) for i in range(n)),
        )

    def test_nonfailing_schedule_returned_unchanged(self):
        schedule = self.make()
        assert shrink_schedule(schedule, lambda s: False) == schedule

    def test_shrinks_to_the_two_guilty_actions(self):
        schedule = self.make(8)
        guilty = {schedule.actions[2], schedule.actions[5]}

        def still_fails(candidate):
            return guilty <= set(candidate.actions)

        shrunk = shrink_schedule(schedule, still_fails)
        assert set(shrunk.actions) == guilty

    def test_result_is_1_minimal(self):
        schedule = self.make(7)
        guilty = {schedule.actions[0], schedule.actions[3], schedule.actions[6]}

        def still_fails(candidate):
            return guilty <= set(candidate.actions)

        shrunk = shrink_schedule(schedule, still_fails)
        for drop in range(len(shrunk.actions)):
            keep = [i for i in range(len(shrunk.actions)) if i != drop]
            assert not still_fails(shrunk.subset(keep))

    def test_probe_budget_enforced(self):
        schedule = self.make(10)
        with pytest.raises(RuntimeError, match="probe"):
            shrink_schedule(
                schedule,
                lambda s: len(s.actions) == 10,
                max_probes=1,
            )


def directed_run(schedule, *, delay=1.0, proposals=((1.0, "v0"), (80.0, "v1"))):
    """A composed deployment under an explicit schedule and workload."""
    system = ComposedConsensus(
        n_servers=3,
        seed=0,
        delay=delay,
        expected_clients=len(proposals),
        backoff=CAMPAIGN_BACKOFF,
    )
    schedule.inject(_ConsensusAdapter(system))
    outcomes = [
        system.propose(f"c{i}", value, at=at)
        for i, (at, value) in enumerate(proposals)
    ]
    system.run(until=schedule.horizon)
    verdict = linearize(
        strip_phase_tags(system.trace()), CONSENSUS, node_limit=200000
    )
    return system, outcomes, verdict


class TestDuplicationAndHealing:
    def test_duplication_storm_is_harmless(self):
        schedule = FaultSchedule(
            seed=0,
            actions=(DuplicationStorm(at=0.0, duration=200.0, rate=0.8),),
        )
        system, outcomes, verdict = directed_run(schedule)
        assert verdict.ok
        assert all(o.decided_value is not None for o in outcomes)
        assert system.stats.duplicated > 0

    def test_partition_heals_and_late_client_commits(self):
        # Cut a minority server off during the first proposal; the healed
        # network must serve the late client, and the trace stays
        # linearizable across the cut.
        schedule = FaultSchedule(
            seed=0,
            actions=(
                PartitionServers(at=0.0, servers=(2,), duration=30.0),
            ),
        )
        _, outcomes, verdict = directed_run(schedule)
        assert verdict.ok
        assert all(o.decided_value is not None for o in outcomes)
        decided = {o.decided_value for o in outcomes}
        assert len(decided) == 1


class TestLossAndCrashDuringBackup:
    def test_backoff_rides_out_loss_and_crash(self):
        # The crash forces the switch to Backup; the loss burst then
        # chews on the Backup phase itself.  The exponential backoff must
        # keep retrying past the burst and commit.
        schedule = FaultSchedule(
            seed=0,
            actions=(
                CrashServer(at=0.0, server=0),
                BurstLoss(at=0.0, duration=60.0, rate=0.4),
            ),
        )
        system, outcomes, verdict = directed_run(schedule)
        assert verdict.ok
        assert all(o.decided_value is not None for o in outcomes)
        assert any(o.switched for o in outcomes)
        assert system.stats.lost > 0

    def test_dead_majority_surfaces_gave_up_not_a_hang(self):
        schedule = FaultSchedule(
            seed=0,
            actions=(
                CrashServer(at=0.0, server=0),
                CrashServer(at=0.0, server=1),
            ),
        )
        _, outcomes, verdict = directed_run(
            schedule, proposals=((1.0, "v0"),)
        )
        (outcome,) = outcomes
        assert outcome.decided_value is None
        assert outcome.gave_up
        assert outcome.path == "gave_up"
        assert outcome.give_up_time is not None
        # A pending invocation is allowed by linearizability.
        assert verdict.ok


class TestAdaptiveBackoff:
    def test_delays_grow_exponentially_to_the_cap(self):
        policy = BackoffPolicy(
            base=2.0, factor=2.0, cap=16.0, jitter=0.0, max_retries=None
        )
        assert [policy.delay(k) for k in range(5)] == [
            2.0,
            4.0,
            8.0,
            16.0,
            16.0,
        ]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = BackoffPolicy(base=8.0, jitter=0.25)
        first = policy.delay(0, key="client-1")
        assert first == policy.delay(0, key="client-1")
        assert first != policy.delay(0, key="client-2")
        assert 6.0 <= first <= 10.0

    def test_fixed_policy_reproduces_legacy_retry_delay(self):
        policy = BackoffPolicy.fixed(10.0)
        assert [policy.delay(k, key="c") for k in range(4)] == [10.0] * 4
        assert not policy.exhausted(10**6)

    def test_retry_budget(self):
        policy = BackoffPolicy(max_retries=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)


class TestCampaign:
    def test_small_campaign_all_linearizable(self):
        report = run_campaign(
            n_schedules=3, base_seed=0, emit=lambda line: None
        )
        assert report.runs == 9
        assert report.all_linearizable
        assert report.inconclusive == 0

    def test_run_lines_are_reproducible_from_print(self):
        report = run_campaign(
            n_schedules=2,
            base_seed=5,
            targets=("composed",),
            emit=lambda line: None,
        )
        for result in report.results:
            line = result.line()
            assert f"seed={result.schedule.seed}" in line
            assert "sent=" in line and "lost=" in line

    def test_identical_campaigns_are_identical(self):
        kwargs = dict(
            n_schedules=3,
            base_seed=11,
            targets=("composed",),
            emit=lambda line: None,
        )
        one = run_campaign(**kwargs)
        two = run_campaign(**kwargs)
        assert [r.line() for r in one.results] == [
            r.line() for r in two.results
        ]

    def test_summary_covers_every_run(self):
        report = run_campaign(
            n_schedules=4,
            base_seed=0,
            targets=("composed", "smr"),
            emit=lambda line: None,
        )
        grouped = report.by_fault_class()
        assert sum(len(rs) for rs in grouped.values()) == report.runs
        assert "runs=8" in report.summary()

    def test_smr_target_checks_interface_trace(self):
        target = SMRTarget()
        schedule = random_schedule(seed=2, n_servers=3)
        result = target.run(schedule)
        assert result.ok
        assert result.total == 4

    def test_mutant_campaign_catches_and_shrinks(self):
        # Seed 1046 is a random schedule whose churn wipes the accept
        # quorum's memory; with the amnesiac acceptor the campaign must
        # flag it and shrink the schedule to a smaller reproducer.
        report = run_campaign(
            n_schedules=1,
            base_seed=1046,
            targets=("composed",),
            mutant=True,
            emit=lambda line: None,
        )
        assert len(report.violations) == 1
        violation = report.violations[0]
        assert violation.shrunk.seed == 1046
        assert 0 < len(violation.shrunk.actions) <= len(
            violation.result.schedule.actions
        )
        assert "seed=1046" in violation.report()

    def test_mutant_schedule_is_harmless_with_durable_acceptors(self):
        target = ComposedTarget()
        from repro.faults.campaign import MUTANT_ACTIONS

        schedule = random_schedule(
            seed=1046, n_servers=3, allow=MUTANT_ACTIONS
        )
        assert target.run(schedule, mutant=False).ok
        assert not target.run(schedule, mutant=True).ok
