"""End-to-end tests of the asyncio TCP runtime (`repro.net`).

Everything here runs real localhost sockets: a
:class:`~repro.net.cluster.LocalCluster` on ephemeral ports, clients
driving the Quorum/Backup composition over the wire codec, and the
recorded history checked by the same
:func:`~repro.core.fastcheck.check_linearizable` the simulator uses.
Timeouts are kept tight so the whole module stays in CI-smoke range.
"""

import asyncio
import json

import pytest

from repro.core.fastcheck import check_linearizable
from repro.faults.netfaults import TransportFaults
from repro.mp.backoff import BackoffPolicy
from repro.net import (
    FrameError,
    LocalCluster,
    NetClient,
    Supervisor,
    run_loadgen,
)
from repro.net.client import HistoryRecorder, OperationTimeout
from repro.smr.universal import UniversalFrontend, kv_store_adt

FAST_BACKOFF = BackoffPolicy(
    base=0.1, factor=2.0, cap=0.5, jitter=0.25, max_retries=4
)

SILENT = lambda line: None  # noqa: E731


def make_client(cluster, transport, recorder, name="c0", **kwargs):
    kwargs.setdefault("quorum_timeout", 0.15)
    kwargs.setdefault("backoff", FAST_BACKOFF)
    kwargs.setdefault("op_timeout", 3.0)
    return NetClient(
        name,
        cluster.n_servers,
        transport,
        kwargs.pop("log", {}),
        recorder,
        UniversalFrontend(kv_store_adt()),
        **kwargs,
    )


class TestLoadgen:
    def test_end_to_end_linearizable(self, tmp_path):
        artifact = tmp_path / "run.json"
        report = run_loadgen(
            replicas=3,
            clients=4,
            ops=30,
            seed=0,
            artifact=str(artifact),
            emit=SILENT,
        )
        assert report.linearizable
        assert report.committed == 30
        assert report.pending == 0
        assert report.fast + report.slow == 30
        assert report.percentile(0.5) is not None
        assert set(report.endpoint_stats) == {
            "node0",
            "node1",
            "node2",
            "clients",
        }
        payload = json.loads(artifact.read_text())
        assert payload["report"]["verdict"] == "linearizable"
        assert payload["history"]  # raw wire-level events travel along

    def test_kill_replica_backup_path_stays_linearizable(self):
        report = run_loadgen(
            replicas=3,
            clients=4,
            ops=24,
            seed=2,
            kill=1,
            kill_after=0.25,
            emit=SILENT,
        )
        assert report.linearizable
        assert report.killed == 1
        assert report.committed == 24
        # With one of three replicas dead, Quorum unanimity is
        # impossible: post-kill slots must decide through Backup.
        assert report.slow > 0


class TestClusterAndClients:
    def test_sequential_clients_see_each_other(self):
        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            try:
                # Two transports = two independent client processes with
                # their own local slot caches; linearizability must hold
                # across them (Quorum unanimity makes local caches safe).
                t1 = cluster.client_transport("procA")
                t2 = cluster.client_transport("procB")
                recorder = HistoryRecorder(clock=lambda: t1.now)
                a = make_client(cluster, t1, recorder, name="a")
                b = make_client(cluster, t2, recorder, name="b")
                assert await a.submit(("put", "x", 5)) == ("value", None)
                assert await b.submit(("get", "x")) == ("value", 5)
                assert await b.submit(("put", "x", 6)) == ("value", 5)
                assert await a.submit(("get", "x")) == ("value", 6)
                return recorder.trace()
            finally:
                await cluster.stop()

        trace = asyncio.run(scenario())
        assert check_linearizable(trace, kv_store_adt()).ok

    def test_kill_withdraws_endpoint(self):
        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            try:
                assert cluster.book.endpoints() == ("node0", "node1", "node2")
                await cluster.kill(1)
                assert cluster.book.endpoints() == ("node0", "node2")
                assert cluster.alive() == [0, 2]
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_unencodable_command_is_refused_at_the_wire(self):
        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            try:
                transport = cluster.client_transport()
                recorder = HistoryRecorder(clock=lambda: transport.now)
                client = make_client(cluster, transport, recorder)
                with pytest.raises(FrameError):
                    await client.submit(("put", "x", object()))
            finally:
                await cluster.stop()

        asyncio.run(scenario())


class TestCrashRecovery:
    def test_kill_restart_recovers_state_and_makes_progress(self, tmp_path):
        """The acceptance scenario: a replica with accepted WAL state is
        killed, restarted from its WAL over real sockets, serves reads
        of the state it recovered, and the cluster reaches fresh
        decisions — the whole history linearizable."""

        async def scenario():
            cluster = LocalCluster(n_servers=3, wal_root=str(tmp_path))
            await cluster.start()
            try:
                transport = cluster.client_transport("clients")
                recorder = HistoryRecorder(clock=lambda: transport.now)
                a = make_client(cluster, transport, recorder, name="a")
                assert await a.submit(("put", "x", 1)) == ("value", None)
                assert await a.submit(("put", "y", 2)) == ("value", None)
                await cluster.kill(1)
                assert cluster.alive() == [0, 2]
                # With node1 dead this decides through Backup (2/3
                # majority), so node1's WAL never hears about it.
                assert await a.submit(("put", "x", 3)) == ("value", 1)
                node = await cluster.restart(1)
                assert cluster.alive() == [0, 1, 2]
                # The relaunched node replayed real slots from its WAL.
                assert node.recovered is not None
                assert node.recovered.slots()
                # A fresh client (empty slot cache) replays the whole
                # prefix, mixing recovered state into its quorum rounds.
                b = make_client(cluster, transport, recorder, name="b")
                assert await b.submit(("get", "x")) == ("value", 3)
                assert await b.submit(("get", "y")) == ("value", 2)
                # Fresh decisions after the restart.
                assert await a.submit(("put", "y", 4)) == ("value", 2)
                return recorder
            finally:
                await cluster.stop()

        recorder = asyncio.run(scenario())
        report = check_linearizable(recorder.trace(), kv_store_adt())
        assert report.ok

    def test_restart_of_never_accepted_node_is_clean(self, tmp_path):
        async def scenario():
            cluster = LocalCluster(n_servers=3, wal_root=str(tmp_path))
            await cluster.start()
            try:
                # Kill before any traffic: the WAL is empty and the
                # restart must come back with nothing to recover.
                await cluster.kill(2)
                node = await cluster.restart(2)
                assert node.recovered is not None
                assert node.recovered.empty
                transport = cluster.client_transport("clients")
                recorder = HistoryRecorder(clock=lambda: transport.now)
                client = make_client(cluster, transport, recorder)
                assert await client.submit(("put", "x", 1)) == (
                    "value",
                    None,
                )
                assert await client.submit(("get", "x")) == ("value", 1)
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_restarting_a_live_node_is_refused(self, tmp_path):
        async def scenario():
            cluster = LocalCluster(n_servers=3, wal_root=str(tmp_path))
            await cluster.start()
            try:
                with pytest.raises(RuntimeError, match="still alive"):
                    await cluster.restart(0)
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_supervisor_restarts_dead_nodes(self, tmp_path):
        async def scenario():
            cluster = LocalCluster(n_servers=3, wal_root=str(tmp_path))
            await cluster.start()
            supervisor = Supervisor(cluster, poll_interval=0.02)
            supervisor.start()
            try:
                await cluster.kill(1)
                for _ in range(100):
                    if supervisor.restarted:
                        break
                    await asyncio.sleep(0.02)
                assert [i for _, i in supervisor.restarted] == [1]
                assert cluster.alive() == [0, 1, 2]
                # A held node stays down until released.
                supervisor.hold(2)
                await cluster.kill(2)
                await asyncio.sleep(0.2)
                assert cluster.alive() == [0, 1]
                supervisor.release(2)
                for _ in range(100):
                    if cluster.alive() == [0, 1, 2]:
                        break
                    await asyncio.sleep(0.02)
                assert cluster.alive() == [0, 1, 2]
            finally:
                await supervisor.stop()
                await cluster.stop()

        asyncio.run(scenario())

    def test_successor_continues_the_workload(self, tmp_path):
        async def scenario():
            cluster = LocalCluster(n_servers=3, wal_root=str(tmp_path))
            await cluster.start()
            try:
                transport = cluster.client_transport("clients")
                recorder = HistoryRecorder(clock=lambda: transport.now)
                client = make_client(
                    cluster, transport, recorder, op_timeout=0.8
                )
                assert await client.submit(("put", "x", 1)) == (
                    "value",
                    None,
                )
                # Majority down: the next op times out and poisons c0.
                await cluster.kill(1)
                await cluster.kill(2)
                with pytest.raises(OperationTimeout):
                    await client.submit(("put", "x", 2))
                heir = client.successor()
                assert heir.name == "c0@1"
                assert heir.log is client.log  # shared decided-slot cache
                await cluster.restart(1)
                await cluster.restart(2)
                # The heir keeps the load going; the pending op may or
                # may not have taken effect, so only observe via a get.
                value = await heir.submit(("get", "x"))
                assert value in (("value", 1), ("value", 2))
                assert heir.successor().name == "c0@2"
                return recorder
            finally:
                await cluster.stop()

        recorder = asyncio.run(scenario())
        assert recorder.pending_clients() == ("c0",)
        assert check_linearizable(recorder.trace(), kv_store_adt()).ok


class TestPendingOps:
    def test_majority_dead_leaves_op_pending_and_poisons_client(self):
        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            try:
                transport = cluster.client_transport()
                recorder = HistoryRecorder(clock=lambda: transport.now)
                client = make_client(
                    cluster, transport, recorder, op_timeout=1.0
                )
                assert await client.submit(("put", "x", 1)) == (
                    "value",
                    None,
                )
                await cluster.kill(1)
                await cluster.kill(2)
                with pytest.raises(OperationTimeout):
                    await client.submit(("put", "x", 2))
                # Sequential clients must not continue past an op whose
                # fate is unknown.
                assert client.poisoned
                with pytest.raises(RuntimeError, match="poisoned"):
                    await client.submit(("get", "x"))
                return recorder
            finally:
                await cluster.stop()

        recorder = asyncio.run(scenario())
        assert recorder.pending_clients() == ("c0",)
        # The history — committed put, pending put — still checks out:
        # the timed-out op may or may not have taken effect.
        report = check_linearizable(recorder.trace(), kv_store_adt())
        assert report.ok

    def test_partitioned_minority_forces_backup_path(self):
        async def scenario():
            faults = TransportFaults(seed=0)
            cluster = LocalCluster(n_servers=3, faults=faults)
            await cluster.start()
            try:
                transport = cluster.client_transport("clients")
                # Clients cannot reach node2: Quorum can never collect
                # accepts from all three servers, but the servers still
                # talk to each other, so Backup (majority 2/3) decides.
                faults.partition("clients", "node2")
                recorder = HistoryRecorder(clock=lambda: transport.now)
                client = make_client(cluster, transport, recorder)
                results = []
                for value in range(3):
                    results.append(
                        await client.submit(("put", "k", value))
                    )
                assert [r for r in results] == [
                    ("value", None),
                    ("value", 0),
                    ("value", 1),
                ]
                assert all(r.path == "slow" for r in client.results)
                cut = transport.stats.link("clients", "node2")
                assert cut.partitioned > 0
                return recorder
            finally:
                await cluster.stop()

        recorder = asyncio.run(scenario())
        assert check_linearizable(recorder.trace(), kv_store_adt()).ok
