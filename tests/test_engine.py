"""The process-parallel engine: determinism, order, and wiring.

``repro.engine.parallel_map`` is the single primitive behind ``--jobs``;
everything here pins the property the campaigns and sweeps rely on:
the parallel result is *identical* to the serial one — same order, same
verdicts, same emitted lines — only the wall-clock may differ.
"""

import repro.engine as engine
from repro.core.enumeration import (
    parallel_composition_sweep,
    sweep_composition_scope,
)
from repro.faults.campaign import run_campaign


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert engine.parallel_map(abs, [-3, 1, -2], jobs=1) == [3, 1, 2]

    def test_parallel_path_preserves_order(self):
        items = list(range(-20, 20))
        assert engine.parallel_map(abs, items, jobs=2) == [
            abs(i) for i in items
        ]

    def test_empty_and_singleton_inputs(self):
        assert engine.parallel_map(abs, [], jobs=4) == []
        # a single item never pays for a pool
        assert engine.parallel_map(abs, [-7], jobs=4) == [7]

    def test_default_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert engine.default_jobs() == 3
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        assert engine.default_jobs() >= 1
        monkeypatch.delenv("REPRO_JOBS")
        assert engine.default_jobs() >= 1


class TestSweepSharding:
    def test_shards_partition_the_enumeration(self):
        serial = sweep_composition_scope(["c1"], ["a", "b"], 4)
        parts = [
            sweep_composition_scope(
                ["c1"], ["a", "b"], 4, shard=(i, 3)
            )
            for i in range(3)
        ]
        merged = {
            key: sum(part[key] for part in parts) for key in serial
        }
        assert merged == serial

    def test_parallel_sweep_equals_serial(self):
        serial = sweep_composition_scope(["c1", "c2"], ["a"], 4)
        parallel = parallel_composition_sweep(
            ["c1", "c2"], ["a"], 4, jobs=2
        )
        assert parallel == serial
        assert serial["falsified"] == 0


class TestCampaignParallelism:
    def campaign_lines(self, jobs):
        lines = []
        report = run_campaign(
            n_schedules=2,
            base_seed=5,
            targets=("composed",),
            verbose=True,
            emit=lines.append,
            jobs=jobs,
        )
        return lines, report

    def test_jobs_do_not_change_the_report(self):
        serial_lines, serial_report = self.campaign_lines(jobs=1)
        parallel_lines, parallel_report = self.campaign_lines(jobs=2)
        assert serial_lines == parallel_lines
        assert len(serial_lines) == 2
        assert [r.line() for r in serial_report.results] == [
            r.line() for r in parallel_report.results
        ]
        assert serial_report.inconclusive == parallel_report.inconclusive


class TestNemesisCLI:
    def test_bad_jobs_value_is_usage_error(self):
        from repro.__main__ import run_nemesis

        assert run_nemesis(["--jobs", "many"]) == 1
        assert run_nemesis(["--jobs"]) == 1
        assert run_nemesis(["1", "2", "3"]) == 1

    def test_jobs_flag_reaches_run_campaign(self, monkeypatch):
        import repro.faults
        from repro.__main__ import run_nemesis

        seen = {}

        class FakeReport:
            all_linearizable = True

            def summary(self):
                return "fake"

        def fake_run_campaign(**kwargs):
            seen.update(kwargs)
            return FakeReport()

        monkeypatch.setattr(
            repro.faults, "run_campaign", fake_run_campaign
        )
        assert run_nemesis(["7", "3", "--jobs=4"]) == 0
        assert seen["n_schedules"] == 7
        assert seen["base_seed"] == 3
        assert seen["jobs"] == 4
        assert run_nemesis(["--jobs", "2"]) == 0
        assert seen["jobs"] == 2
        assert seen["n_schedules"] == 20
