"""Tests for traces and well-formedness (paper Sections 3, 4.5, 5.4)."""

from repro.core.actions import inv, res, swi
from repro.core.adt import decide, propose
from repro.core.traces import (
    Trace,
    abort_indices,
    all_inputs,
    commit_indices,
    init_indices,
    inputs,
    is_complete,
    is_phase_wellformed,
    is_wellformed,
    is_wellformed_client_subtrace,
    pending_invocations,
    phase_client_subtrace,
    replace_switches_with_invocations,
    strip_phase_tags,
)

P, D = propose, decide


class TestTraceBasics:
    def test_len_and_iter(self):
        t = Trace([inv("c", 1, "x")])
        assert len(t) == 1
        assert list(t) == [inv("c", 1, "x")]

    def test_indexing_and_slicing(self):
        t = Trace([inv("c", 1, "x"), res("c", 1, "x", "o")])
        assert t[0] == inv("c", 1, "x")
        assert isinstance(t[:1], Trace)
        assert len(t[:1]) == 1

    def test_equality_and_hash(self):
        t1 = Trace([inv("c", 1, "x")])
        t2 = Trace([inv("c", 1, "x")])
        assert t1 == t2
        assert hash(t1) == hash(t2)

    def test_append_is_persistent(self):
        t = Trace()
        t2 = t.append(inv("c", 1, "x"))
        assert len(t) == 0 and len(t2) == 1

    def test_concatenation(self):
        t = Trace([inv("c", 1, "x")]) + Trace([res("c", 1, "x", "o")])
        assert len(t) == 2

    def test_clients(self):
        t = Trace([inv("a", 1, "x"), inv("b", 1, "y")])
        assert t.clients() == {"a", "b"}

    def test_projections_by_kind(self):
        t = Trace(
            [inv("c", 1, "x"), res("c", 1, "x", "o"), swi("d", 2, "y", "v")]
        )
        assert len(t.invocations()) == 1
        assert len(t.responses()) == 1
        assert len(t.switches()) == 1

    def test_client_subtrace(self):
        t = Trace([inv("a", 1, "x"), inv("b", 1, "y"), res("a", 1, "x", "o")])
        sub = t.client_subtrace("a")
        assert list(sub) == [inv("a", 1, "x"), res("a", 1, "x", "o")]


class TestInputs:
    def test_inputs_counts_only_invocations(self):
        t = Trace(
            [
                inv("a", 1, "x"),
                swi("b", 2, "y", "v"),
                res("a", 1, "x", "o"),
                inv("b", 2, "z"),
            ]
        )
        assert inputs(t, 3) == ("x",)
        assert all_inputs(t) == ("x", "z")

    def test_inputs_exclusive_bound(self):
        t = Trace([inv("a", 1, "x"), inv("b", 1, "y")])
        assert inputs(t, 0) == ()
        assert inputs(t, 1) == ("x",)
        assert inputs(t, 2) == ("x", "y")


class TestPending:
    def test_no_pending_when_all_answered(self):
        t = Trace([inv("a", 1, "x"), res("a", 1, "x", "o")])
        assert pending_invocations(t) == []

    def test_pending_detected(self):
        t = Trace([inv("a", 1, "x")])
        assert [p.input for p in pending_invocations(t)] == ["x"]

    def test_switch_clears_pending(self):
        t = Trace([inv("a", 1, "x"), swi("a", 2, "x", "v")])
        assert pending_invocations(t) == []


class TestPlainWellFormedness:
    def test_empty_trace(self):
        assert is_wellformed(Trace())

    def test_alternation(self):
        assert is_wellformed(
            Trace(
                [
                    inv("a", 1, "x"),
                    inv("b", 1, "y"),
                    res("b", 1, "y", "o"),
                    res("a", 1, "x", "o"),
                ]
            )
        )

    def test_response_without_invocation(self):
        assert not is_wellformed(Trace([res("a", 1, "x", "o")]))

    def test_double_invocation(self):
        assert not is_wellformed(Trace([inv("a", 1, "x"), inv("a", 1, "y")]))

    def test_mismatched_response_input(self):
        assert not is_wellformed(
            Trace([inv("a", 1, "x"), res("a", 1, "y", "o")])
        )

    def test_pending_is_wellformed(self):
        assert is_wellformed(Trace([inv("a", 1, "x")]))

    def test_subtrace_checker_directly(self):
        assert is_wellformed_client_subtrace(
            Trace([inv("a", 1, "x"), res("a", 1, "x", "o"), inv("a", 1, "y")])
        )

    def test_completeness(self):
        complete = Trace([inv("a", 1, "x"), res("a", 1, "x", "o")])
        incomplete = Trace([inv("a", 1, "x")])
        assert is_complete(complete)
        assert not is_complete(incomplete)


class TestPhaseWellFormedness:
    def test_first_phase_starts_with_invocation(self):
        t = Trace([inv("a", 1, P("v"))])
        assert is_phase_wellformed(t, 1, 2)

    def test_first_phase_rejects_init(self):
        t = Trace([swi("a", 1, P("v"), "sv")])
        assert not is_phase_wellformed(t, 1, 2)

    def test_later_phase_requires_init_first(self):
        good = Trace(
            [swi("a", 2, P("v"), "sv"), res("a", 2, P("v"), D("v"))]
        )
        bad = Trace([inv("a", 2, P("v"))])
        assert is_phase_wellformed(good, 2, 3)
        assert not is_phase_wellformed(bad, 2, 3)

    def test_single_init_per_client(self):
        t = Trace(
            [
                swi("a", 2, P("v"), "sv"),
                res("a", 2, P("v"), D("v")),
                swi("a", 2, P("w"), "sv"),
            ]
        )
        assert not is_phase_wellformed(t, 2, 3)

    def test_abort_must_be_last(self):
        t = Trace(
            [
                inv("a", 1, P("v")),
                swi("a", 2, P("v"), "sv"),
                inv("a", 1, P("w")),
            ]
        )
        assert not is_phase_wellformed(t, 1, 2)

    def test_abort_carries_open_input(self):
        t = Trace([inv("a", 1, P("v")), swi("a", 2, P("w"), "sv")])
        assert not is_phase_wellformed(t, 1, 2)

    def test_composed_phase_wellformed(self):
        # A client crossing from phase 1 to phase 2 in a (1,3) trace.
        t = Trace(
            [
                inv("a", 1, P("v")),
                swi("a", 2, P("v"), "sv"),
                res("a", 2, P("v"), D("v")),
            ]
        )
        assert is_phase_wellformed(t, 1, 3)

    def test_intermediate_switch_projected_away(self):
        t = Trace([inv("a", 1, P("v")), swi("a", 2, P("v"), "sv")])
        sub = phase_client_subtrace(t, 1, 3, "a")
        assert list(sub) == [inv("a", 1, P("v"))]

    def test_response_after_invocation_required(self):
        t = Trace(
            [
                inv("a", 1, P("v")),
                res("a", 1, P("v"), D("v")),
                inv("a", 1, P("w")),
                res("a", 1, P("w"), D("v")),
            ]
        )
        assert is_phase_wellformed(t, 1, 2)


class TestIndexClassification:
    def test_commit_indices(self):
        t = Trace([inv("a", 1, "x"), res("a", 1, "x", "o")])
        assert commit_indices(t) == (1,)

    def test_init_and_abort_indices(self):
        t = Trace(
            [
                swi("a", 2, "x", "v"),
                res("a", 2, "x", "o"),
                inv("b", 2, "y"),
                swi("b", 3, "y", "w"),
            ]
        )
        assert init_indices(t, 2) == (0,)
        assert abort_indices(t, 3) == (3,)


class TestTransformations:
    def test_strip_phase_tags(self):
        t = Trace(
            [
                inv("a", 1, "x"),
                swi("a", 2, "x", "v"),
                res("a", 2, "x", "o"),
            ]
        )
        stripped = strip_phase_tags(t)
        assert list(stripped) == [inv("a", 1, "x"), res("a", 1, "x", "o")]

    def test_replace_switches(self):
        t = Trace([swi("a", 2, "x", "v"), res("a", 2, "x", "o")])
        replaced = replace_switches_with_invocations(t, 2)
        assert list(replaced) == [inv("a", 2, "x"), res("a", 2, "x", "o")]

    def test_replace_keeps_abort_switches(self):
        t = Trace([inv("a", 1, "x"), swi("a", 2, "x", "v")])
        replaced = replace_switches_with_invocations(t, 1)
        assert list(replaced) == list(t)
