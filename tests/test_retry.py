"""Safe retry, failover, hedging: the client liveness half of sessions.

The pre-session clients poisoned themselves on the first timeout.  With
the session seam making re-proposal safe, a timed-out attempt is
re-submitted with the *same* ``(client, seq)`` identity — so these
tests pin the recording discipline that makes retries sound: all
attempts of an op are **one** invocation (the post-hoc checker and the
streaming monitor must both agree), a hedged duplicate's second
response is ignored, and only an exhausted deadline leaves a pending
invocation and a poisoned identity with a working successor.  The
deterministic canary at the bottom proves the other direction: with
dedup disabled, a duplicate decree double-applies and *both* checkers
call the history a violation.
"""

import asyncio

import pytest

from repro.core.adt import counter_adt
from repro.core.fastcheck import check_linearizable
from repro.faults.netfaults import TransportFaults
from repro.monitor import MonitorTap, StreamingMonitor
from repro.mp.backoff import BackoffPolicy
from repro.net.client import (
    HistoryRecorder,
    NetClient,
    OperationTimeout,
    RetriesExhausted,
)
from repro.net.cluster import LocalCluster
from repro.net.pipeline import PipelineClient, SlotPipeline
from repro.smr.universal import UniversalFrontend, kv_store_adt

#: a patient per-op retry budget for tests that must survive a blackout
PATIENT = BackoffPolicy(base=0.05, factor=2.0, cap=0.3, jitter=0.5,
                        max_retries=10)


def blackout(faults, duration):
    """Cut the client endpoint off from every node for ``duration``."""
    for j in range(3):
        faults.partition("clients", f"node{j}", duration=duration)


def one_invocation(recorder, client, command):
    return [
        e for e in recorder.events
        if e[0] == "inv" and e[1] == client and e[2] == command
    ]


# ---------------------------------------------------------------------------
# retried op = exactly one invocation (pipeline and probing clients)
# ---------------------------------------------------------------------------


class TestRetryIsOneInvocation:
    def test_pipeline_client_retries_through_a_blackout(self):
        async def scenario():
            faults = TransportFaults(seed=3)
            cluster = LocalCluster(n_servers=3, faults=faults)
            await cluster.start()
            transport = cluster.client_transport("clients")
            tap = MonitorTap(StreamingMonitor(counter_adt()))
            recorder = HistoryRecorder(clock=lambda: transport.now, tap=tap)
            pipeline = SlotPipeline(
                "rt", 3, transport, adt=counter_adt(), quorum_timeout=0.1
            )
            client = PipelineClient(
                "c0", pipeline, recorder, op_timeout=6.0,
                attempt_timeout=0.15, retry_backoff=PATIENT,
            )
            blackout(faults, 0.5)
            out = await client.submit(("inc", 1))
            report = await tap.close()
            await cluster.stop()
            return out, client, recorder, report

        out, client, recorder, report = asyncio.run(scenario())
        assert out == ("count", 0)
        assert client.retries >= 1  # the blackout actually forced retries
        assert not client.poisoned
        # every attempt shares the one invocation: both checkers agree
        assert len(one_invocation(recorder, "c0", ("inc", 1))) == 1
        assert check_linearizable(recorder.trace(), counter_adt()).ok
        assert report.verdict == "ok"

    def test_net_client_retries_through_a_blackout(self):
        async def scenario():
            faults = TransportFaults(seed=4)
            cluster = LocalCluster(n_servers=3, faults=faults)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            client = NetClient(
                "c0", 3, transport, {}, recorder,
                UniversalFrontend(kv_store_adt()),
                quorum_timeout=0.1, op_timeout=6.0, attempt_timeout=0.2,
                retry_backoff=PATIENT,
            )
            blackout(faults, 0.5)
            out = await client.submit(("put", "k", "v"))
            await cluster.stop()
            return out, client, recorder

        out, client, recorder = asyncio.run(scenario())
        assert out == ("value", None)
        assert client.retries >= 1
        assert len(one_invocation(recorder, "c0", ("put", "k", "v"))) == 1
        assert check_linearizable(recorder.trace(), kv_store_adt()).ok


# ---------------------------------------------------------------------------
# hedging: the duplicate's second response is ignored
# ---------------------------------------------------------------------------


class TestHedging:
    def test_hedged_duplicate_answers_once(self):
        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            tap = MonitorTap(StreamingMonitor(counter_adt()))
            recorder = HistoryRecorder(clock=lambda: transport.now, tap=tap)
            pipeline = SlotPipeline(
                "hdg", 3, transport, adt=counter_adt(), quorum_timeout=0.15
            )
            client = PipelineClient(
                "c0", pipeline, recorder, op_timeout=5.0, hedge_after=0.0
            )
            outs = [await client.submit(("inc", 1)) for _ in range(3)]
            # let any trailing hedged decree decide and fold
            await asyncio.sleep(0.3)
            report = await tap.close()
            await cluster.stop()
            return outs, client, pipeline, recorder, report

        outs, client, pipeline, recorder, report = asyncio.run(scenario())
        # fetch-and-add replies are consecutive: each inc applied once,
        # every hedged duplicate suppressed by the seam
        assert outs == [("count", 0), ("count", 1), ("count", 2)]
        assert client.hedges == 3
        assert pipeline._state == 3
        # one invocation and one response per op, hedges notwithstanding
        assert len(recorder.events) == 6
        assert check_linearizable(recorder.trace(), counter_adt()).ok
        assert report.verdict == "ok"


# ---------------------------------------------------------------------------
# exhaustion: pending invocation, poisoned identity, working successor
# ---------------------------------------------------------------------------


class TestRetriesExhausted:
    def test_exhaustion_leaves_pending_poisons_and_hands_over(self):
        async def scenario():
            faults = TransportFaults(seed=5)
            cluster = LocalCluster(n_servers=3, faults=faults)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            pipeline = SlotPipeline(
                "exh", 3, transport, adt=counter_adt(), quorum_timeout=0.1
            )
            client = PipelineClient(
                "c0", pipeline, recorder, op_timeout=0.6,
                attempt_timeout=0.15, retry_backoff=PATIENT,
            )
            blackout(faults, 30.0)  # outlives the op deadline
            with pytest.raises(RetriesExhausted):
                await client.submit(("inc", 1))
            assert client.poisoned
            with pytest.raises(RuntimeError, match="poisoned"):
                await client.submit(("inc", 1))
            heir = client.successor()
            faults.heal()
            out = await heir.submit(("inc", 1))
            # the abandoned op may still decide behind our back — that
            # is exactly why its invocation must stay pending
            await asyncio.sleep(0.3)
            await cluster.stop()
            return client, heir, out, recorder

        client, heir, out, recorder = asyncio.run(scenario())
        assert heir.name == "c0@1"
        assert heir.successor().name == "c0@2"
        assert "c0" in recorder.pending_clients()
        assert out[0] == "count"
        # fate-unknown op pending, not lost: the history still checks
        assert check_linearizable(recorder.trace(), counter_adt()).ok

    def test_retries_exhausted_is_an_operation_timeout(self):
        # call sites written against the old contract keep working
        assert issubclass(RetriesExhausted, OperationTimeout)


# ---------------------------------------------------------------------------
# the deterministic dedup-disabled canary
# ---------------------------------------------------------------------------


class TestDedupCanary:
    async def _double_decide(self, dedup):
        """One inc, a manufactured duplicate decree of it, one read."""
        cluster = LocalCluster(n_servers=3)
        await cluster.start()
        transport = cluster.client_transport("clients")
        tap = MonitorTap(StreamingMonitor(counter_adt()))
        recorder = HistoryRecorder(clock=lambda: transport.now, tap=tap)
        pipeline = SlotPipeline(
            "can", 3, transport, adt=counter_adt(),
            quorum_timeout=0.15, dedup=dedup,
        )
        c1 = PipelineClient("c1", pipeline, recorder)
        c2 = PipelineClient("c2", pipeline, recorder)
        await c1.submit(("inc", 1))
        # redeliver the decided decree as a retry would: same tag,
        # fresh slot
        dup = ("inc", 1, ("seq", ("c1", 1)))
        await pipeline.enqueue(dup)
        out = await c2.submit(("cread",))
        report = await tap.close()
        await cluster.stop()
        return out, pipeline, recorder, report

    def test_seam_folds_the_duplicate(self):
        out, pipeline, recorder, report = asyncio.run(
            self._double_decide(dedup=True)
        )
        assert out == ("count", 1)
        assert pipeline.duplicates == 1
        assert check_linearizable(recorder.trace(), counter_adt()).ok
        assert report.verdict == "ok"

    def test_mutant_double_applies_and_both_checkers_catch_it(self):
        out, pipeline, recorder, report = asyncio.run(
            self._double_decide(dedup=False)
        )
        assert out == ("count", 2)  # the impossible read
        assert pipeline.duplicates == 0
        verdict = check_linearizable(recorder.trace(), counter_adt())
        assert not verdict.ok
        assert report.verdict == "violation"
