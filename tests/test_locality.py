"""Locality: a system of linearizable objects is linearizable (§4.3).

"Property 2 makes linearizability a local property. In other words, a
system composed of linearizable objects is itself linearizable."  This is
the *inter-object* composition that the paper's *intra-object* theorem
complements — checked here with product ADTs over random per-object
linearizable traces, and end-to-end with two independent shared-memory
consensus objects living in one memory.
"""

import random

import pytest

from repro.core.actions import Invocation, Response, inv, res
from repro.core.adt import (
    consensus_adt,
    decide,
    deq,
    enq,
    product_adt,
    propose,
    queue_adt,
    reg_read,
    reg_write,
    register_adt,
    tag_object,
)
from repro.core.linearizability import is_linearizable
from repro.core.traces import Trace

from helpers import random_linearizable_trace


def tag_trace(name, trace):
    """Lift a single-object trace into the product alphabet."""
    actions = []
    for action in trace:
        if isinstance(action, Invocation):
            actions.append(
                Invocation(action.client, 1, tag_object(name, action.input))
            )
        else:
            actions.append(
                Response(
                    action.client,
                    1,
                    tag_object(name, action.input),
                    tag_object(name, action.output),
                )
            )
    return list(actions)


def interleave(rng, *sequences):
    """Random order-preserving merge of several action lists."""
    pools = [list(s) for s in sequences]
    merged = []
    while any(pools):
        candidates = [i for i, pool in enumerate(pools) if pool]
        pick = rng.choice(candidates)
        merged.append(pools[pick].pop(0))
    return Trace(merged)


class TestProductADT:
    def test_components_independent(self):
        adt = product_adt({"A": consensus_adt(), "B": register_adt()})
        history = (
            tag_object("A", propose("x")),
            tag_object("B", reg_write(5)),
            tag_object("B", reg_read()),
        )
        assert adt.output(history) == ("B", ("value", 5))
        assert adt.output(history[:1]) == ("A", decide("x"))

    def test_validation(self):
        adt = product_adt({"A": consensus_adt()})
        assert adt.is_input(tag_object("A", propose("x")))
        assert not adt.is_input(tag_object("Z", propose("x")))
        assert not adt.is_input(propose("x"))
        assert adt.is_output(("A", decide("x")))


class TestLocalityTheorem:
    @pytest.mark.parametrize("seed", range(8))
    def test_interleaving_of_linearizable_objects_is_linearizable(self, seed):
        # Distinct client namespaces per object: each client is
        # sequential, so the merged trace stays well-formed.
        rng = random.Random(seed)
        t_a = random_linearizable_trace(
            rng,
            consensus_adt(),
            [propose("x"), propose("y")],
            n_clients=2,
            n_steps=4,
        )
        t_b = random_linearizable_trace(
            rng,
            queue_adt(),
            [enq(1), deq()],
            n_clients=2,
            n_steps=4,
        )
        t_b = Trace(
            [
                type(a)(*(("q-" + a.client,) + tuple(
                    getattr(a, f) for f in ("phase", "input", "output")
                    if hasattr(a, f)
                )))
                for a in t_b
            ]
        )
        combined = interleave(
            rng, tag_trace("A", t_a), tag_trace("B", t_b)
        )
        product = product_adt({"A": consensus_adt(), "B": queue_adt()})
        assert is_linearizable(combined, product), combined.actions

    @pytest.mark.parametrize("seed", range(6))
    def test_one_bad_object_breaks_the_system(self, seed):
        # If a component's projection is non-linearizable, so is the
        # whole (the contrapositive of locality).
        rng = random.Random(seed + 100)
        bad = Trace(
            [
                inv("c1", 1, propose("x")),
                res("c1", 1, propose("x"), decide("y")),  # invalid decide
                inv("c2", 1, propose("y")),
                res("c2", 1, propose("y"), decide("y")),
            ]
        )
        good = random_linearizable_trace(
            rng,
            register_adt(),
            [reg_read(), reg_write(1)],
            n_clients=2,
            n_steps=4,
        )
        good = Trace(
            [
                type(a)(*(("r-" + a.client,) + tuple(
                    getattr(a, f) for f in ("phase", "input", "output")
                    if hasattr(a, f)
                )))
                for a in good
            ]
        )
        combined = interleave(
            rng, tag_trace("A", bad), tag_trace("B", good)
        )
        product = product_adt({"A": consensus_adt(), "B": register_adt()})
        assert not is_linearizable(combined, product)


class TestTwoObjectsOneMemory:
    def test_two_shared_memory_consensus_objects(self):
        """Two namespaced RCons+CASCons objects in one shared memory:
        each object agrees independently; the combined client-level trace
        is linearizable against the product ADT."""
        from repro.core.recording import TraceRecorder
        from repro.sm.cascons import cascons_switch_program
        from repro.sm.memory import SharedMemory
        from repro.sm.rcons import rcons_program
        from repro.sm.scheduler import InterleavingScheduler

        for seed in range(8):
            memory = SharedMemory()
            recorder = TraceRecorder(enforce=False)
            results = {}

            def client(obj, c, v):
                recorder.invoke(c, 1, tag_object(obj, propose(v)))
                kind, out = yield from rcons_program(c, v, prefix=obj)
                if kind == "switch":
                    kind, out = yield from cascons_switch_program(
                        out, prefix=obj + "-cas"
                    )
                results[(obj, c)] = out
                recorder.respond(
                    c, 1, tag_object(obj, propose(v)),
                    tag_object(obj, decide(out)),
                )

            programs = {
                "a1": client("A", "a1", "v1"),
                "a2": client("A", "a2", "v2"),
                "b1": client("B", "b1", "w1"),
                "b2": client("B", "b2", "w2"),
            }
            scheduler = InterleavingScheduler(memory, programs)
            scheduler.run_random(random.Random(seed))

            assert results[("A", "a1")] == results[("A", "a2")]
            assert results[("B", "b1")] == results[("B", "b2")]
            product = product_adt(
                {"A": consensus_adt(), "B": consensus_adt()}
            )
            assert is_linearizable(recorder.trace(), product), seed
