"""Exactly-once client sessions (`repro.smr.sessions` and friends).

The session seam is the safety half of safe retry: a command that
decided in two slots — retried proposal, hedged duplicate, redelivered
frame — must apply once and answer the same reply everywhere.  These
tests cover the seam in isolation (table, applier, spec-level ADT
wrapper), its durability by inheritance (a WAL-recovered decided log
refolds to the same state and replies, through compaction), the wire
level (duplicate-delivery bursts on both codecs must not re-apply a
decree), and the overload edge (typed ``Overloaded`` before any
invocation is recorded, circuit breaker state machine, per-client
backoff copies).
"""

import asyncio

import pytest

from repro.core.adt import counter_adt
from repro.core.fastcheck import check_linearizable
from repro.faults.netfaults import TransportFaults
from repro.mp.backoff import BackoffPolicy
from repro.net.client import (
    DEFAULT_BACKOFF,
    HistoryRecorder,
    NetClient,
)
from repro.net.cluster import LocalCluster
from repro.net.overload import CircuitBreaker, Overloaded
from repro.net.pipeline import PipelineClient, SlotPipeline
from repro.net.wal import NodeWAL
from repro.smr.sessions import (
    SessionTable,
    SessionedApplier,
    dedup_commands,
    seq_uid,
    sessioned_adt,
    untag_command,
)
from repro.smr.universal import (
    UniversalFrontend,
    batch_commands,
    kv_store_adt,
)


def tag(command, client, seq):
    return command + (("seq", (client, seq)),)


# ---------------------------------------------------------------------------
# the session vocabulary: uids, untagging, stream dedup
# ---------------------------------------------------------------------------


class TestSessionVocabulary:
    def test_seq_uid_roundtrip(self):
        tagged = tag(("inc", 1), "c1", 4)
        assert seq_uid(tagged) == ("c1", 4)
        assert untag_command(tagged) == ("inc", 1)

    def test_untagged_commands_have_no_identity(self):
        assert seq_uid(("inc", 1)) is None
        assert untag_command(("inc", 1)) == ("inc", 1)
        assert seq_uid(("put", "k", ("seq", "lookalike"))) is None

    def test_dedup_commands_first_occurrence_wins(self):
        a1 = tag(("inc", 1), "a", 1)
        b1 = tag(("inc", 1), "b", 1)
        stream = [a1, b1, a1, tag(("inc", 1), "a", 2), b1, ("inc", 7)]
        deduped = list(dedup_commands(stream))
        assert deduped == [a1, b1, tag(("inc", 1), "a", 2), ("inc", 7)]


# ---------------------------------------------------------------------------
# the table and the applier
# ---------------------------------------------------------------------------


class TestSessionTable:
    def test_duplicate_suppressed_with_cached_reply(self):
        table = SessionTable()
        op = tag(("inc", 1), "c1", 1)
        assert table.fresh(op)
        table.record(op, ("count", 0))
        assert not table.fresh(op)
        assert table.cached_reply(op) == ("count", 0)
        assert table.duplicates == 1
        assert len(table) == 1

    def test_older_seq_is_duplicate_newer_is_fresh(self):
        table = SessionTable()
        table.record(tag(("inc", 1), "c1", 3), ("count", 2))
        assert not table.fresh(tag(("inc", 1), "c1", 2))
        assert table.fresh(tag(("inc", 1), "c1", 4))

    def test_snapshot_restore_roundtrip(self):
        table = SessionTable()
        table.record(tag(("inc", 1), "c2", 5), ("count", 4))
        table.record(tag(("inc", 1), "c1", 1), ("count", 0))
        restored = SessionTable.restore(table.snapshot())
        assert restored.snapshot() == table.snapshot()
        assert not restored.fresh(tag(("inc", 1), "c2", 5))

    def test_disabled_table_is_the_mutant(self):
        table = SessionTable(enabled=False)
        op = tag(("inc", 1), "c1", 1)
        table.record(op, ("count", 0))
        assert table.fresh(op)  # double-apply: the canary's target
        assert table.duplicates == 0


class TestSessionedApplier:
    def test_duplicate_leaves_state_and_answers_cached(self):
        applier = SessionedApplier(counter_adt())
        op = tag(("inc", 3), "c1", 1)
        state, reply, fresh = applier.apply(0, op)
        assert (state, reply, fresh) == (3, ("count", 0), True)
        state, reply, fresh = applier.apply(state, op)
        assert (state, reply, fresh) == (3, ("count", 0), False)
        assert applier.duplicates == 1

    def test_refold_rebuilds_the_same_table(self):
        """The table is a pure function of the decided prefix: a
        recovering applier refolding the same log agrees on state,
        replies and duplicates."""
        log = [
            tag(("inc", 1), "a", 1),
            tag(("inc", 2), "b", 1),
            tag(("inc", 1), "a", 1),
            tag(("inc", 5), "a", 2),
        ]

        def fold():
            applier = SessionedApplier(counter_adt())
            state, replies = 0, []
            for command in log:
                state, reply, _ = applier.apply(state, command)
                replies.append(reply)
            return state, replies, applier.table.snapshot()

        assert fold() == fold()
        state, replies, _ = fold()
        assert state == 8  # 1 + 2 + 5, the duplicate folded once
        assert replies[2] == replies[0]


class TestSessionedADT:
    def test_duplicate_input_is_a_noop_with_cached_output(self):
        adt = sessioned_adt(counter_adt())
        op = tag(("inc", 2), "c1", 1)
        state, out = adt.transition(adt.initial_state, op)
        assert out == ("count", 0)
        state2, out2 = adt.transition(state, op)
        assert state2 == state and out2 == ("count", 0)

    def test_untagged_input_passes_through(self):
        adt = sessioned_adt(counter_adt())
        state, out = adt.transition(adt.initial_state, ("inc", 2))
        assert out == ("count", 0) and state[0] == 2
        assert adt.is_input(tag(("inc", 1), "c", 1))
        assert adt.is_input(("cread",))
        assert not adt.is_input(("bogus",))


# ---------------------------------------------------------------------------
# durability by inheritance: the WAL'd decided log refolds identically
# ---------------------------------------------------------------------------


class TestSessionsSurviveRecovery:
    def _fold(self, decided):
        applier = SessionedApplier(counter_adt())
        state, replies = 0, {}
        for slot in sorted(decided):
            for command in batch_commands(decided[slot]):
                state, reply, _ = applier.apply(state, command)
                replies.setdefault(seq_uid(command), reply)
        return state, replies, applier.table.snapshot()

    def test_recovered_log_folds_to_the_same_sessions(self, tmp_path):
        """Kill-and-recover (and compact) preserves exactly-once: the
        session table needs no storage of its own because the decided
        log *is* the durable state."""
        decided = {
            0: tag(("inc", 1), "c1", 1),
            1: tag(("inc", 2), "c2", 1),
            2: tag(("inc", 1), "c1", 1),  # duplicate decree of slot 0
            3: tag(("inc", 4), "c1", 2),
        }
        wal = NodeWAL(str(tmp_path))
        for slot in (0, 1):
            wal.record_decided(slot, decided[slot])
        wal.compact()  # the duplicate's first occurrence is snapshotted
        for slot in (2, 3):
            wal.record_decided(slot, decided[slot])
        before = self._fold(dict(wal.state.decided))
        wal.close()

        recovered = NodeWAL(str(tmp_path))
        after = self._fold(dict(recovered.state.decided))
        recovered.close()
        assert after == before
        state, replies, snapshot = after
        assert state == 7  # 1 + 2 + 4: slot 2 folded as a duplicate
        assert replies[("c1", 1)] == ("count", 0)
        assert dict(
            (client, (seq, reply)) for client, seq, reply in snapshot
        ) == {"c1": (2, ("count", 3)), "c2": (1, ("count", 1))}


# ---------------------------------------------------------------------------
# the wire level: duplicate-delivery bursts on both codecs
# ---------------------------------------------------------------------------


class TestWireDuplicateDelivery:
    @pytest.mark.parametrize("codec", ["json", "binary"])
    def test_redelivered_frames_never_reapply(self, codec):
        """Under a heavy duplicate-delivery window every frame class —
        proposals, accepts, phase-2 broadcasts, decisions — may arrive
        twice.  Acked increments must still apply exactly once and the
        history must stay linearizable."""

        async def scenario():
            faults = TransportFaults(seed=13)
            faults.burst_duplicate(0.5, duration=30.0)
            cluster = LocalCluster(n_servers=3, faults=faults, codec=codec)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            pipeline = SlotPipeline(
                "dup", 3, transport, adt=counter_adt(), quorum_timeout=0.15
            )
            clients = [
                PipelineClient(f"c{i}", pipeline, recorder, op_timeout=10.0)
                for i in range(3)
            ]

            async def drive(client):
                for _ in range(4):
                    await client.submit(("inc", 1))

            await asyncio.gather(*(drive(c) for c in clients))
            await cluster.stop()
            return faults, pipeline, recorder

        faults, pipeline, recorder = asyncio.run(scenario())
        assert faults.duplicated > 0  # the nemesis actually engaged
        assert pipeline._state == 12  # 3 clients x 4 acked incs, once each
        assert check_linearizable(recorder.trace(), counter_adt()).ok

    def test_duplicate_decree_folds_once_in_prefix_fold(self):
        """NetClient's prefix fold sees the same rule: a command
        decided at two slots contributes one application to the
        derived response (a counter makes double-apply observable)."""

        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            client = NetClient(
                "c0", 3, transport, {}, recorder,
                UniversalFrontend(counter_adt()),
            )
            await client.submit(("inc", 1))
            # simulate a duplicate decree: the same tagged command
            # appears at a second slot (as after a retry whose first
            # decree also landed)
            dup_slot = max(client.log) + 1
            client.log[dup_slot] = client.log[max(client.log)]
            out = await client.submit(("cread",))
            await cluster.stop()
            return out, recorder

        out, recorder = asyncio.run(scenario())
        assert out == ("count", 1)  # not 2: the duplicate folded once
        assert check_linearizable(recorder.trace(), counter_adt()).ok


# ---------------------------------------------------------------------------
# overload: typed shedding before any invocation, breaker mechanics
# ---------------------------------------------------------------------------


class TestOverload:
    def test_admission_sheds_before_invocation(self):
        """A shed op is a per-op typed error: no invocation recorded,
        client not poisoned, next submit proceeds."""

        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            pipeline = SlotPipeline("adm", 3, transport, max_queue=0)
            client = PipelineClient("c0", pipeline, recorder)
            with pytest.raises(Overloaded):
                await client.submit(("put", "k", "v"))
            shed_events = len(recorder.events)
            assert pipeline.shed == 1
            # relieve the pressure: the same client retries fine
            pipeline.max_queue = 8
            out = await client.submit(("put", "k", "v"))
            await cluster.stop()
            return shed_events, client, out, recorder

        shed_events, client, out, recorder = asyncio.run(scenario())
        assert shed_events == 0  # shed load leaves no history
        assert not client.poisoned
        assert out == ("value", None)
        assert recorder.pending_clients() == ()

    def test_open_breaker_sheds_typed(self):
        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            breaker = CircuitBreaker(
                threshold=1, clock=lambda: transport.now
            )
            pipeline = SlotPipeline("brk", 3, transport, breaker=breaker)
            breaker.record_failure()  # as a decree give-up would
            client = PipelineClient("c0", pipeline, recorder)
            with pytest.raises(Overloaded):
                await client.submit(("put", "k", "v"))
            await cluster.stop()
            return recorder

        recorder = asyncio.run(scenario())
        assert recorder.events == []


class TestCircuitBreaker:
    def test_closed_until_threshold_then_open(self):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=3, reset_after=1.0, clock=lambda: now[0]
        )
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
            assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_single_probe_then_close_or_reopen(self):
        now = [0.0]
        breaker = CircuitBreaker(
            threshold=1, reset_after=1.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        assert not breaker.allow()
        now[0] = 1.5
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe claims the half-open slot
        assert not breaker.allow()  # concurrent admits stay shed
        breaker.record_failure()  # probe failed: straight back to open
        assert breaker.state == "open" and breaker.trips == 2
        now[0] = 3.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=lambda: 0.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


# ---------------------------------------------------------------------------
# the backoff-sharing regression (per-client policy copies)
# ---------------------------------------------------------------------------


class TestBackoffCopies:
    def _frontend(self):
        return UniversalFrontend(kv_store_adt())

    def test_clients_never_share_the_module_template(self):
        """Regression for the shared-module-instance bug: every client
        (and the pipeline proposer) owns a private policy copy, never
        ``DEFAULT_BACKOFF`` itself."""

        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            a = NetClient("a", 3, transport, {}, recorder, self._frontend())
            b = NetClient("b", 3, transport, {}, recorder, self._frontend())
            pipeline = SlotPipeline("p", 3, transport)
            pc = PipelineClient("c", pipeline, recorder)
            await cluster.stop()
            return a, b, pipeline, pc

        a, b, pipeline, pc = asyncio.run(scenario())
        policies = [
            a.backoff,
            b.backoff,
            a.retry_backoff,
            b.retry_backoff,
            pipeline.backoff,
            pc.retry_backoff,
        ]
        assert all(p is not DEFAULT_BACKOFF for p in policies)
        assert len(set(map(id, policies))) == len(policies)
        # the copies still carry the template's parameters
        assert a.backoff == DEFAULT_BACKOFF and b.backoff == DEFAULT_BACKOFF

    def test_explicit_policy_is_copied_not_aliased(self):
        async def scenario():
            cluster = LocalCluster(n_servers=3)
            await cluster.start()
            transport = cluster.client_transport("clients")
            recorder = HistoryRecorder(clock=lambda: transport.now)
            shared = BackoffPolicy(base=0.1, max_retries=5)
            a = NetClient(
                "a", 3, transport, {}, recorder, self._frontend(),
                backoff=shared,
            )
            b = NetClient(
                "b", 3, transport, {}, recorder, self._frontend(),
                backoff=shared,
            )
            await cluster.stop()
            return shared, a, b

        shared, a, b = asyncio.run(scenario())
        assert a.backoff is not shared and b.backoff is not shared
        assert a.backoff is not b.backoff
        assert a.backoff.max_retries == 5
