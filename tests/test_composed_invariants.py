"""Fifteen state invariants of the composed specification automaton.

The paper's Isabelle proof of the composition theorem rests on "15 state
invariants about the composed automaton".  This file is the executable
counterpart: fifteen invariants of ``Spec(1,2) ‖ Spec(2,3) ‖ clients``
relating the two phases' states across the switch boundary, checked
exhaustively over the reachable state space.  Together they are the
glue of the refinement argument (hist monotonicity across the boundary,
Sleep/Aborted bookkeeping, pending-input transfer, ...).
"""

import pytest

from repro.core.sequences import is_prefix
from repro.ioa import (
    ABORTED,
    ClientEnvironment,
    PENDING,
    READY,
    SLEEP,
    SpecAutomaton,
    check_invariants,
    compose_automata,
)

CLIENTS = ("c1", "c2")
INPUTS = ("a", "b")


@pytest.fixture(scope="module")
def system():
    spec12 = SpecAutomaton(1, 2, CLIENTS)
    spec23 = SpecAutomaton(2, 3, CLIENTS)
    env = ClientEnvironment(CLIENTS, INPUTS, m=1, budget=1)
    return compose_automata(spec12, spec23, env)


def s1(state):
    return state[0]


def s2(state):
    return state[1]


def env_state(state):
    return state[2]


# --- the fifteen invariants -------------------------------------------------


def inv01_first_phase_always_initialized(state):
    """I-1: a first phase (m=1) is initialized from the start."""
    return s1(state).initialized


def inv02_second_phase_inits_require_first_abort(state):
    """I-2: the second phase only receives inits after the first aborted."""
    return not s2(state).init_hists or s1(state).aborted


def inv03_init_histories_extend_first_hist(state):
    """I-3: every init history the second phase received extends the
    first phase's (frozen) hist."""
    return all(
        is_prefix(s1(state).hist, h) for h in s2(state).init_hists
    )


def inv04_second_hist_extends_first_hist(state):
    """I-4: once initialized, the second phase's hist extends the first's."""
    if not s2(state).initialized:
        return True
    return is_prefix(s1(state).hist, s2(state).hist)


def inv05_awake_in_2_means_aborted_in_1(state):
    """I-5: a client active in phase 2 has aborted phase 1."""
    for i, status in enumerate(s2(state).status):
        if status != SLEEP and s1(state).status[i] != ABORTED:
            return False
    return True


def inv06_aborted_in_1_means_awake_in_2(state):
    """I-6: a client that aborted phase 1 has been handed to phase 2."""
    for i, status in enumerate(s1(state).status):
        if status == ABORTED and s2(state).status[i] == SLEEP:
            return False
    return True


def inv07_pending_transfer(state):
    """I-7: the pending input travels unchanged across the boundary.

    Checked during the handoff window — while phase 2's hist still equals
    the lcp of its init histories, i.e. before any A2 step.  After phase
    2 serves the client, it may legitimately submit fresh inputs there.
    """
    from repro.core.sequences import longest_common_prefix

    if not s2(state).initialized:
        window = True
    else:
        window = s2(state).hist == longest_common_prefix(
            s2(state).init_hists
        )
    if not window:
        return True
    for i, status in enumerate(s2(state).status):
        if status == PENDING and s1(state).status[i] == ABORTED:
            if s2(state).pending[i] != s1(state).pending[i]:
                return False
    return True


def inv08_aborted_clients_imply_aborted_flag_1(state):
    """I-8: per-client Aborted status implies the phase-1 aborted flag."""
    if any(st == ABORTED for st in s1(state).status):
        return s1(state).aborted
    return True


def inv09_aborted_clients_imply_aborted_flag_2(state):
    """I-9: same for phase 2."""
    if any(st == ABORTED for st in s2(state).status):
        return s2(state).aborted
    return True


def inv10_second_initialized_implies_some_init(state):
    """I-10: phase 2 initializes only from received init histories."""
    if s2(state).initialized:
        return len(s2(state).init_hists) >= 1
    return True


def inv11_ready_in_1_has_input_in_hist(state):
    """I-11: a client served by phase 1 has its input inside hist1."""
    for i, status in enumerate(s1(state).status):
        if status == READY and s1(state).pending[i] is not None:
            if s1(state).pending[i] not in s1(state).hist:
                return False
    return True


def inv12_ready_in_2_has_input_in_hist(state):
    """I-12: a client served by phase 2 has its input inside hist2."""
    for i, status in enumerate(s2(state).status):
        if status == READY and s2(state).pending[i] is not None:
            if s2(state).pending[i] not in s2(state).hist:
                return False
    return True


def inv13_hist2_initial_segment_is_lcp_extension(state):
    """I-13: phase 2's hist extends the lcp of its received inits."""
    if not s2(state).initialized or not s2(state).init_hists:
        return True
    from repro.core.sequences import longest_common_prefix

    lcp = longest_common_prefix(s2(state).init_hists)
    return is_prefix(lcp, s2(state).hist)


def inv14_busy_env_matches_pending(state):
    """I-14: a client the environment believes busy is pending in the
    phase its tag points at (or mid-handoff)."""
    for i, (busy, tag, used) in enumerate(env_state(state)):
        if not busy:
            continue
        if tag == 1 and s1(state).status[i] in (PENDING, ABORTED):
            continue
        if tag == 2 and s2(state).status[i] in (SLEEP, PENDING):
            continue
        if tag == 3 and s2(state).status[i] == ABORTED:
            # The client aborted out of the whole object; no later phase
            # exists to serve it, so it stays busy forever.
            continue
        return False
    return True


def inv15_idle_env_matches_ready(state):
    """I-15: a client the environment believes idle is Ready (or has
    never acted) in the phase of its tag."""
    for i, (busy, tag, used) in enumerate(env_state(state)):
        if busy:
            continue
        if tag == 1 and s1(state).status[i] == READY:
            continue
        if tag == 2 and s2(state).status[i] == READY:
            continue
        return False
    return True


ALL_INVARIANTS = [
    ("I-1 first initialized", inv01_first_phase_always_initialized),
    ("I-2 inits after abort", inv02_second_phase_inits_require_first_abort),
    ("I-3 inits extend hist1", inv03_init_histories_extend_first_hist),
    ("I-4 hist2 extends hist1", inv04_second_hist_extends_first_hist),
    ("I-5 awake2 => aborted1", inv05_awake_in_2_means_aborted_in_1),
    ("I-6 aborted1 => awake2", inv06_aborted_in_1_means_awake_in_2),
    ("I-7 pending transfer", inv07_pending_transfer),
    ("I-8 aborted flag 1", inv08_aborted_clients_imply_aborted_flag_1),
    ("I-9 aborted flag 2", inv09_aborted_clients_imply_aborted_flag_2),
    ("I-10 init before hist2", inv10_second_initialized_implies_some_init),
    ("I-11 served1 in hist1", inv11_ready_in_1_has_input_in_hist),
    ("I-12 served2 in hist2", inv12_ready_in_2_has_input_in_hist),
    ("I-13 hist2 extends lcp", inv13_hist2_initial_segment_is_lcp_extension),
    ("I-14 busy env", inv14_busy_env_matches_pending),
    ("I-15 idle env", inv15_idle_env_matches_ready),
]


def test_all_fifteen_invariants_hold(system):
    explored, violations = check_invariants(system, ALL_INVARIANTS)
    assert explored > 500
    assert violations == [], [str(v) for v in violations]


def test_invariant_checker_catches_a_false_invariant(system):
    # Sanity: a deliberately wrong invariant is reported with a path.
    explored, violations = check_invariants(
        system,
        [("bogus: phase 2 never initializes", lambda s: not s2(s).initialized)],
    )
    assert len(violations) == 1
    assert violations[0].path  # a witness schedule was produced


def test_invariants_on_larger_scope():
    spec12 = SpecAutomaton(1, 2, ("c1",))
    spec23 = SpecAutomaton(2, 3, ("c1",))
    env = ClientEnvironment(("c1",), ("a", "b"), m=1, budget=2)
    system = compose_automata(spec12, spec23, env)
    explored, violations = check_invariants(system, ALL_INVARIANTS)
    assert violations == [], [str(v) for v in violations]
    assert explored > 100
