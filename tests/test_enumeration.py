"""Exhaustive small-scope validation of the theorems at trace level.

The most adversarial inputs the theorems can face: *every* well-formed
trace over a tiny universe, not just algorithm-generated ones.  A single
composed trace whose phase projections satisfy SLin while the whole does
not would falsify Theorem 5.
"""

from repro.core.adt import consensus_adt
from repro.core.composition import check_composition_theorem, check_theorem_2
from repro.core.enumeration import (
    count_traces,
    enumerate_composed_consensus_traces,
    enumerate_consensus_phase_traces,
)
from repro.core.speculative import consensus_rinit, is_speculatively_linearizable
from repro.core.traces import is_phase_wellformed

CONS = consensus_adt()


class TestEnumerationMechanics:
    def test_all_enumerated_traces_are_wellformed(self):
        for trace in enumerate_consensus_phase_traces(
            1, 2, ["c1", "c2"], ["a"], max_len=4
        ):
            assert is_phase_wellformed(trace, 1, 2), trace.actions

    def test_later_phase_traces_start_with_init(self):
        for trace in enumerate_consensus_phase_traces(
            2, 3, ["c1"], ["a"], max_len=3
        ):
            assert is_phase_wellformed(trace, 2, 3), trace.actions
            if len(trace):
                first = trace[0]
                assert first.phase == 2

    def test_prefix_closed(self):
        traces = set(
            t.actions
            for t in enumerate_consensus_phase_traces(
                1, 2, ["c1"], ["a"], max_len=3
            )
        )
        for actions in traces:
            for k in range(len(actions)):
                assert actions[:k] in traces

    def test_counts_grow_with_scope(self):
        small = count_traces(
            enumerate_consensus_phase_traces(1, 2, ["c1"], ["a"], max_len=3)
        )
        large = count_traces(
            enumerate_consensus_phase_traces(
                1, 2, ["c1", "c2"], ["a", "b"], max_len=3
            )
        )
        assert 0 < small < large

    def test_ops_per_client_bound(self):
        for trace in enumerate_consensus_phase_traces(
            1, 2, ["c1"], ["a"], max_len=6, max_ops_per_client=1
        ):
            invocations = [a for a in trace if a.phase == 1 and
                           type(a).__name__ == "Invocation"]
            assert len(invocations) <= 1


class TestExhaustiveTheorem5:
    """Theorem 5 over every composed trace of a 2-client/1-value scope
    (length <= 5) and a 1-client/2-value scope (length <= 4)."""

    def _sweep(self, clients, values, max_len):
        rinit = consensus_rinit(values, max_extra=1)
        checked = held = vacuous = 0
        falsified = []
        for trace in enumerate_composed_consensus_traces(
            clients, values, max_len
        ):
            checked += 1
            ok, why = check_composition_theorem(trace, 1, 2, 3, CONS, rinit)
            if not ok:
                falsified.append(trace.actions)
            elif "premise fails" in why:
                vacuous += 1
            else:
                held += 1
        return checked, held, vacuous, falsified

    def test_two_clients_two_values(self):
        # 3357 traces; before the operation-spanning fix to the
        # Real-Time Order pairing this sweep found 8 counterexamples.
        checked, held, vacuous, falsified = self._sweep(
            ["c1", "c2"], ["a", "b"], max_len=5
        )
        assert falsified == [], falsified[:3]
        assert checked > 3000
        assert held > 500
        assert vacuous > 500  # the sweep includes broken traces

    def test_two_clients_one_value(self):
        checked, held, vacuous, falsified = self._sweep(
            ["c1", "c2"], ["a"], max_len=5
        )
        assert falsified == [], falsified[:3]
        assert checked > 100
        assert held > 100

    def test_one_client_two_values(self):
        checked, held, vacuous, falsified = self._sweep(
            ["c1"], ["a", "b"], max_len=4
        )
        assert falsified == [], falsified[:3]
        assert checked >= 27
        assert held > 10


class TestExhaustiveTheorem2:
    def test_projection_linearizable_on_scope(self):
        values = ["a"]
        rinit = consensus_rinit(values, max_extra=1)
        falsified = []
        held = 0
        for trace in enumerate_composed_consensus_traces(
            ["c1", "c2"], values, max_len=4
        ):
            ok, why = check_theorem_2(trace, 3, CONS, rinit)
            if not ok:
                falsified.append(trace.actions)
            elif "linearizable" in why:
                held += 1
        assert falsified == [], falsified[:3]
        assert held > 50


class TestExhaustiveSLinSanity:
    def test_slin_accepts_and_rejects_on_scope(self):
        # The checker must be non-trivial on the enumerated space.
        values = ["a", "b"]
        rinit = consensus_rinit(values, max_extra=1)
        accepted = rejected = 0
        for trace in enumerate_consensus_phase_traces(
            1, 2, ["c1", "c2"], values, max_len=4
        ):
            if is_speculatively_linearizable(trace, 1, 2, CONS, rinit):
                accepted += 1
            else:
                rejected += 1
        assert accepted > 50
        assert rejected > 50
