"""Tests for the invariants I1-I5 and the constructive proofs (§2.4/2.5)."""

import pytest

from repro.core.actions import inv, res, swi
from repro.core.adt import consensus_adt, decide, propose
from repro.core.invariants import (
    check_first_phase_invariants,
    check_i1,
    check_i2,
    check_i3,
    check_i4,
    check_i5,
    check_second_phase_invariants,
    first_phase_commit_histories,
    first_phase_witness_history,
    second_phase_decision_consistent,
)
from repro.core.linearizability import check_linearization_function
from repro.core.speculative import consensus_rinit, is_speculatively_linearizable
from repro.core.traces import Trace

P, D = propose, decide
CONS = consensus_adt()
RIN = consensus_rinit(["v1", "v2", "v3"], max_extra=1)


class TestI1:
    def test_holds_without_decisions(self):
        t = Trace([inv("c", 1, P("v1")), swi("c", 2, P("v1"), "v1")])
        assert check_i1(t, 2).ok

    def test_holds_when_switches_match(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                swi("c2", 2, P("v2"), "v1"),
            ]
        )
        assert check_i1(t, 2).ok

    def test_detects_conflicting_switch(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                swi("c2", 2, P("v2"), "v2"),
            ]
        )
        report = check_i1(t, 2)
        assert not report.ok and "switched" in report.detail

    def test_switch_before_decision_also_constrained(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v2"),
                res("c1", 1, P("v1"), D("v1")),
            ]
        )
        assert not check_i1(t, 2).ok


class TestI2:
    def test_uniform_decisions(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v1")),
            ]
        )
        assert check_i2(t).ok

    def test_split_decisions(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v2")),
            ]
        )
        assert not check_i2(t).ok


class TestI3:
    def test_decided_value_proposed_before(self):
        t = Trace([inv("c", 1, P("v1")), res("c", 1, P("v1"), D("v1"))])
        assert check_i3(t, 2).ok

    def test_unproposed_decision(self):
        t = Trace([inv("c", 1, P("v1")), res("c", 1, P("v1"), D("v9"))])
        assert not check_i3(t, 2).ok

    def test_unproposed_switch_value(self):
        t = Trace([inv("c", 1, P("v1")), swi("c", 2, P("v1"), "v9")])
        assert not check_i3(t, 2).ok

    def test_proposal_must_precede_event(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v2")),
                inv("c2", 1, P("v2")),
            ]
        )
        assert not check_i3(t, 2).ok


class TestI4I5:
    def test_i4_uniform(self):
        t = Trace(
            [
                swi("c1", 2, P("v1"), "v1"),
                res("c1", 2, P("v1"), D("v1")),
            ]
        )
        assert check_i4(t).ok

    def test_i5_requires_submitted_switch_value(self):
        good = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
            ]
        )
        bad = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v2")),
            ]
        )
        assert check_i5(good, 2).ok
        assert not check_i5(bad, 2).ok

    def test_i5_ordering_matters(self):
        # The decision must match a switch value submitted *before* it.
        t = Trace(
            [
                swi("c1", 2, P("v1"), "v1"),
                res("c1", 2, P("v1"), D("v2")),
                swi("c2", 2, P("v2"), "v2"),
            ]
        )
        assert not check_i5(t, 2).ok

    def test_bundles(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
            ]
        )
        assert all(r.ok for r in check_second_phase_invariants(t, 2))

    def test_decision_consistency_helper(self):
        t = Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
            ]
        )
        assert second_phase_decision_consistent(t, 2)


class TestInvariantsImplySLin:
    """The paper's §2.4 argument: I1-I3 imply first-phase speculative
    linearizability and I4-I5 imply second-phase speculative
    linearizability — checked on families of traces that satisfy the
    invariants."""

    FIRST_PHASE_TRACES = [
        # all decide
        Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v1")),
            ]
        ),
        # decide then switch with the decided value
        Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                swi("c2", 2, P("v2"), "v1"),
            ]
        ),
        # switch before the decision
        Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                swi("c2", 2, P("v2"), "v1"),
                res("c1", 1, P("v1"), D("v1")),
            ]
        ),
        # nobody decides
        Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                swi("c1", 2, P("v1"), "v1"),
                swi("c2", 2, P("v2"), "v2"),
            ]
        ),
        # three clients, two switch
        Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                inv("c3", 1, P("v3")),
                res("c1", 1, P("v1"), D("v1")),
                swi("c2", 2, P("v2"), "v1"),
                swi("c3", 2, P("v3"), "v1"),
            ]
        ),
    ]

    @pytest.mark.parametrize("t", FIRST_PHASE_TRACES)
    def test_first_phase(self, t):
        reports = check_first_phase_invariants(t, 2)
        assert all(r.ok for r in reports)
        assert is_speculatively_linearizable(t, 1, 2, CONS, RIN)

    SECOND_PHASE_TRACES = [
        Trace(
            [
                swi("c1", 2, P("v2"), "v1"),
                res("c1", 2, P("v2"), D("v1")),
            ]
        ),
        Trace(
            [
                swi("c1", 2, P("v1"), "v1"),
                swi("c2", 2, P("v2"), "v2"),
                res("c1", 2, P("v1"), D("v2")),
                res("c2", 2, P("v2"), D("v2")),
            ]
        ),
    ]

    @pytest.mark.parametrize("t", SECOND_PHASE_TRACES)
    def test_second_phase(self, t):
        reports = check_second_phase_invariants(t, 2)
        assert all(r.ok for r in reports)
        assert is_speculatively_linearizable(t, 2, 3, CONS, RIN)


class TestConstructiveWitness:
    def test_witness_history_shape(self):
        # "h starts with winner's proposal and the rest are the proposals
        # of the deciding clients other than the winner."
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v1")),
            ]
        )
        h = first_phase_witness_history(t)
        assert h == (P("v1"), P("v2"))

    def test_witness_history_empty_without_decisions(self):
        t = Trace([inv("c1", 1, P("v1"))])
        assert first_phase_witness_history(t) == ()

    def test_commit_histories_validate(self):
        # The constructed commit histories are a genuine linearization
        # function (the executable form of the paper's proof).
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v1")),
            ]
        )
        g = first_phase_commit_histories(t)
        assert check_linearization_function(t, g, CONS).ok

    def test_commit_histories_with_nonwinner_first_decider(self):
        # c2 decides first but the winner is c1 (proposed the decided
        # value).
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c2", 1, P("v2"), D("v1")),
                res("c1", 1, P("v1"), D("v1")),
            ]
        )
        g = first_phase_commit_histories(t)
        assert check_linearization_function(t, g, CONS).ok
