"""Performance-shape regressions for the trace-inclusion checker.

The subset construction must deduplicate frontier entries by
``(impl state, spec-state set)``: a diamond-shaped automaton has
exponentially many paths but linearly many states, and a checker that
enqueues per-path re-explores the diamond ``2^N`` times.  These tests
pin the explored-pair count to the linear regime and check that the
parent-pointer counterexample reconstruction still yields a correct
witness trace (the old implementation carried the trace tuple on every
frontier entry; the count-based guarantee must survive the rewrite).
"""

from repro.ioa import FunctionalAutomaton, check_trace_inclusion


def diamond_automaton(levels, tail=(("stop",),)):
    """A chain of ``levels`` diamonds: state i branches via action
    ``("s", i, 0)`` or ``("s", i, 1)`` and both branches re-converge at
    i+1.  ``tail`` actions are emitted once after the last diamond —
    ``2**levels`` paths, ``2 * levels + len(tail) + 1`` states.
    """

    def transitions(state):
        kind, i = state
        if kind == "join" and i < levels:
            yield ("s", i, 0), ("branch", i)
            yield ("s", i, 1), ("branch", i)
        elif kind == "branch":
            yield ("j", i), ("join", i + 1)
        elif kind == "join":
            for k, action in enumerate(tail):
                if i == levels + k:
                    yield action, ("join", i + 1)

    return FunctionalAutomaton(
        name=f"diamond[{levels}]",
        initial=[("join", 0)],
        is_input=lambda a: False,
        is_output=lambda a: True,
        is_internal=lambda a: False,
        transitions=transitions,
        input_step=lambda s, a: s,
    )


def permissive_spec(allow):
    """A one-state spec performing exactly the actions ``allow`` accepts."""

    def transitions(state):
        for action in allow:
            yield action, state

    return FunctionalAutomaton(
        name="permissive",
        initial=["*"],
        is_input=lambda a: False,
        is_output=lambda a: True,
        is_internal=lambda a: False,
        transitions=transitions,
        input_step=lambda s, a: s,
    )


def diamond_alphabet(levels, tail=()):
    actions = []
    for i in range(levels):
        actions += [("s", i, 0), ("s", i, 1), ("j", i)]
    actions += list(tail)
    return actions


class TestDiamondDedup:
    def test_explored_pairs_linear_not_exponential(self):
        levels = 16  # 2**16 paths; must stay linear in levels
        impl = diamond_automaton(levels)
        spec = permissive_spec(diamond_alphabet(levels, tail=[("stop",)]))
        ok, cex, explored = check_trace_inclusion(impl, spec)
        assert ok, str(cex)
        assert explored <= 4 * levels + 8

    def test_dedup_scales_with_levels(self):
        counts = {}
        for levels in (8, 16):
            impl = diamond_automaton(levels)
            spec = permissive_spec(
                diamond_alphabet(levels, tail=[("stop",)])
            )
            _, _, counts[levels] = check_trace_inclusion(impl, spec)
        # Doubling the diamond depth must roughly double the work, not
        # square it (exponential re-exploration would be ~256x here).
        assert counts[16] <= 3 * counts[8]


class TestCounterexampleWitness:
    def test_witness_trace_reconstructed_through_diamonds(self):
        # The spec refuses the final action: the counterexample's trace
        # must be a genuine path through every diamond, rebuilt from
        # parent pointers.
        levels = 5
        impl = diamond_automaton(levels, tail=(("bad",),))
        spec = permissive_spec(diamond_alphabet(levels))  # no ("bad",)
        ok, cex, _ = check_trace_inclusion(impl, spec)
        assert not ok
        assert cex.action == ("bad",)
        trace = list(cex.trace)
        assert len(trace) == 2 * levels
        for i in range(levels):
            assert trace[2 * i] in (("s", i, 0), ("s", i, 1))
            assert trace[2 * i + 1] == ("j", i)

    def test_immediate_failure_has_empty_trace(self):
        impl = diamond_automaton(0, tail=(("bad",),))
        spec = permissive_spec([])
        ok, cex, _ = check_trace_inclusion(impl, spec)
        assert not ok
        assert cex.trace == ()
