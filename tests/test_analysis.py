"""Tests for the protocol-aware static analysis pass (repro.analysis).

Each rule is demonstrated by at least one known-bad fixture snippet and
one near-miss that must stay clean; RD02 is additionally exercised by
deliberately reintroducing the persist-before-reply bug in a scratch
copy of the real ``net/node.py``.  The suite also pins the framework
contracts: inline suppressions, baseline round-tripping, and — the
self-hosting gate — that the committed tree lints clean against the
committed (empty) baseline.
"""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import (
    analyze_source,
    load_baseline,
    package_relpath,
    rule_ids,
    run_lint,
    write_baseline,
)
from repro.analysis.baseline import BASELINE_NAME

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC = os.path.join(ROOT, "src")
NODE_PY = os.path.join(SRC, "repro", "net", "node.py")

def rules_of(source, relpath):
    """The active rule ids a snippet triggers (dedent applied)."""
    active, _ = analyze_source(textwrap.dedent(source), relpath)
    return [finding.rule for finding in active]


# ----------------------------------------------------------------------
# per-rule fixtures: known-bad snippets and near-misses
# ----------------------------------------------------------------------

BAD_SNIPPETS = [
    # RD01: wall clocks / global RNG / unseeded constructions in
    # replayable layers
    (
        "RD01",
        """\
        import time

        def stamp():
            return time.time()
        """,
        "repro/mp/scratch.py",
    ),
    (
        "RD01",
        """\
        import random

        def pick(options):
            return random.choice(options)
        """,
        "repro/faults/scratch.py",
    ),
    (
        "RD01",
        """\
        import random

        rng = random.Random()
        """,
        "repro/core/scratch.py",
    ),
    (
        "RD01",
        """\
        from datetime import datetime

        def stamp():
            return datetime.now()
        """,
        "repro/sm/scratch.py",
    ),
    (
        "RD01",
        """\
        import os

        def nonce():
            return os.urandom(8)
        """,
        "repro/faults/scratch.py",
    ),
    (
        "RD01",
        """\
        class Cell:
            def __hash__(self):
                return id(self)
        """,
        "repro/core/scratch.py",
    ),
    # RD03: bypassing the atomic shared-memory API
    (
        "RD03",
        """\
        def sneak(memory, name):
            return memory._cells[name]
        """,
        "repro/sm/scratch.py",
    ),
    (
        "RD03",
        """\
        def sneak(memory, name):
            return memory.peek(name)
        """,
        "repro/sm/scratch.py",
    ),
    # RD04: orphan tasks and silent broad excepts in net/
    (
        "RD04",
        """\
        import asyncio

        def spawn(loop, coro):
            loop.create_task(coro())
        """,
        "repro/net/scratch.py",
    ),
    (
        "RD04",
        """\
        def drain(frames):
            try:
                frames.pop()
            except Exception:
                pass
        """,
        "repro/net/scratch.py",
    ),
    # RD05: incomplete signatures and impure hooks
    (
        "RD05",
        """\
        class Half(IOAutomaton):
            def initial_states(self):
                return [0]

            def is_input(self, action):
                return False
        """,
        "repro/ioa/scratch.py",
    ),
    (
        "RD05",
        """\
        class Memoizing(IOAutomaton):
            def initial_states(self):
                return [0]

            def is_input(self, action):
                return False

            def is_output(self, action):
                return True

            def is_internal(self, action):
                return False

            def input_step(self, state, action):
                return state

            def transitions(self, state):
                self.cache.append(state)
                return []
        """,
        "repro/ioa/scratch.py",
    ),
    # RD06: responses recorded before the reply was observably released
    (
        "RD06",
        """\
        async def submit(self, command):
            self.recorder.invoke(self.name, command)
            output = self.cache.get(command)
            self.recorder.respond(self.name, command, output)
        """,
        "repro/net/scratch.py",
    ),
    (
        "RD06",
        """\
        async def emit(self, command, output):
            await self.ready.wait()
            self._recorder.respond(self.name, command, output)
        """,
        "repro/monitor/scratch.py",
    ),
    # RD07: decided commands applied outside the session-dedup seam
    (
        "RD07",
        """\
        def apply_ready(self, command):
            self._state, output = self.adt.transition(self._state, command)
            return output
        """,
        "repro/net/scratch.py",
    ),
    (
        "RD07",
        """\
        def prefix_response(self, slot):
            history = tuple(c[:-1] for c in self.flatten(slot))
            return self.frontend.respond(history)
        """,
        "repro/net/scratch.py",
    ),
]

GOOD_SNIPPETS = [
    # seeded randomness and port clocks are the sanctioned forms
    (
        """\
        import random

        def pick(options, seed):
            return random.Random(seed).choice(options)
        """,
        "repro/faults/scratch.py",
    ),
    # wall clocks outside the replayable layers are RD01-exempt
    (
        """\
        import time

        def stamp():
            return time.time()
        """,
        "repro/net/scratch.py",
    ),
    # memory.py itself implements the API it guards
    (
        """\
        class SharedMemory:
            def read(self, name):
                return self._cells.get(name)
        """,
        "repro/sm/memory.py",
    ),
    # a retained task handle is not an orphan
    (
        """\
        def spawn(loop, coro, tasks):
            tasks.append(loop.create_task(coro()))
        """,
        "repro/net/scratch.py",
    ),
    # a narrowed, counted except is the transport's sanctioned shape
    (
        """\
        def write(writer, frame, stats):
            try:
                writer.write(frame)
            except (ConnectionError, RuntimeError):
                stats.lost += 1
        """,
        "repro/net/scratch.py",
    ),
    # a complete, observer-only automaton
    (
        """\
        class Total(IOAutomaton):
            def initial_states(self):
                return [0]

            def is_input(self, action):
                return False

            def is_output(self, action):
                return True

            def is_internal(self, action):
                return False

            def input_step(self, state, action):
                return state

            def transitions(self, state):
                return [(("out",), state + 1)]
        """,
        "repro/ioa/scratch.py",
    ),
    # invoke, awaited reply, then respond — the sanctioned shape
    (
        """\
        async def submit(self, command):
            self.recorder.invoke(self.name, command)
            output = await self.pipeline.enqueue(command)
            self.recorder.respond(self.name, command, output)
        """,
        "repro/net/scratch.py",
    ),
    # a nested callback's respond is its own scope, and the simulation
    # recorders (mp/, sm/) decide responses in-step — both out of reach
    (
        """\
        def run(self, command):
            self.recorder.invoke(self.name, command)
            self.recorder.respond(self.name, command, self.step(command))
        """,
        "repro/mp/scratch.py",
    ),
    # applying through the session seam is RD07's sanctioned shape, as
    # is a frontend response derived from a deduplicated prefix
    (
        """\
        def apply_ready(self, command):
            self._state, output, fresh = self.applier.apply(
                self._state, command
            )
            return output

        def prefix_response(self, commands):
            history = tuple(
                untag_command(c) for c in dedup_commands(commands)
            )
            return self.frontend.respond(history)
        """,
        "repro/net/scratch.py",
    ),
    # the checker-side replay in core/ is out of RD07's scope
    (
        """\
        def replay(adt, history):
            state = adt.initial_state
            for command in history:
                state, _ = adt.transition(state, command)
            return state
        """,
        "repro/core/scratch.py",
    ),
]


@pytest.mark.parametrize("rule,source,relpath", BAD_SNIPPETS)
def test_bad_fixture_is_caught(rule, source, relpath):
    assert rule in rules_of(source, relpath)


@pytest.mark.parametrize("source,relpath", GOOD_SNIPPETS)
def test_near_miss_stays_clean(source, relpath):
    assert rules_of(source, relpath) == []


def test_every_rule_has_a_failing_fixture():
    # RD02's failing fixtures are the real-node mutations below; RD08's
    # live in tests/test_interleaving.py (they need the project call
    # graph the deep engine builds).
    covered = {rule for rule, _, _ in BAD_SNIPPETS} | {"RD02", "RD08"}
    assert covered == set(rule_ids()) == {
        "RD01",
        "RD02",
        "RD03",
        "RD04",
        "RD05",
        "RD06",
        "RD07",
        "RD08",
    }


# ----------------------------------------------------------------------
# RD02 against the real durable roles
# ----------------------------------------------------------------------

GOOD_BODY = """\
        self._wal_buffer = []
        state = self._wal_persisted
        try:
            super().on_message(src, message)  # type: ignore[misc]
            state = self.durable_state()
        finally:
            buffered, self._wal_buffer = self._wal_buffer, None
        if state == self._wal_persisted:
            # nothing new to persist; replies promise only already
            # durable state and may leave at once
            self._wal_release(buffered)
            return
        try:
            # under group commit the callback fires after the shared
            # fsync of this event-loop tick — one sync covers every
            # role that recorded in it, and no reply beats its record
            self._wal.record_durable(
                self._wal_kind,
                self._wal_slot,
                state,
                lambda: self._wal_release(buffered),
            )
        except WALFullError:
            self._wal_begin_retry(state, buffered)
            return
        self._wal_persisted = state
"""

BUGGED_BODY = """\
        self._wal_buffer = []
        state = self._wal_persisted
        try:
            super().on_message(src, message)
            state = self.durable_state()
        finally:
            buffered, self._wal_buffer = self._wal_buffer, None
        for dst, msg in buffered:
            super().send(dst, msg)
        if state != self._wal_persisted:
            self._wal.record(self._wal_kind, self._wal_slot, state)
            self._wal_persisted = state
"""


def test_rd02_real_node_is_clean():
    with open(NODE_PY) as handle:
        source = handle.read()
    active, _ = analyze_source(source, "repro/net/node.py")
    assert [f for f in active if f.rule == "RD02"] == []


def test_rd02_catches_reintroduced_persist_before_reply_bug():
    """Reordering the WAL append after the reply release must be caught."""
    with open(NODE_PY) as handle:
        source = handle.read()
    assert GOOD_BODY in source, (
        "net/node.py's persist-before-reply body drifted; update the "
        "scratch mutation in this test alongside it"
    )
    mutated = source.replace(GOOD_BODY, BUGGED_BODY)
    active, _ = analyze_source(mutated, "repro/net/node.py")
    rd02 = [f for f in active if f.rule == "RD02"]
    assert rd02, "the reintroduced persist-before-reply bug went unnoticed"
    assert "before the WAL append" in rd02[0].message


def test_rd02_flags_reply_with_no_wal_append():
    source = textwrap.dedent(
        """\
        class Leaky(_DurableRole):
            def on_message(self, src, message):
                self._wal = self._wal
                super().send(src, ("ack",))
        """
    )
    assert rules_of(source, "repro/net/scratch.py") == ["RD02"]


def test_rd02_flags_durable_mutation_after_append():
    source = textwrap.dedent(
        """\
        class Sloppy(_DurableRole):
            def durable_state(self):
                return self.ballot

            def on_message(self, src, message):
                self._wal.record("acc", 0, self.durable_state())
                self.ballot = message
        """
    )
    active, _ = analyze_source(source, "repro/net/scratch.py")
    assert [f.rule for f in active] == ["RD02"]
    assert "mutates durable attribute 'ballot'" in active[0].message


def test_rd02_flags_reply_before_faultfs_fsync():
    """A role built straight on the FaultFS seam (no NodeWAL) is held
    to the same persist-before-reply discipline: the fsync is the
    persistence point, and an ack released before it is flagged."""
    source = textwrap.dedent(
        """\
        class RawDiskRole(Process):
            def on_message(self, src, message):
                self.pending = message
                super().send(src, ("ack", self.pending))
                self._fs.append(self.handle, frame(message))
                self._fs.fsync(self.handle)
        """
    )
    active, _ = analyze_source(source, "repro/net/scratch.py")
    assert [f.rule for f in active] == ["RD02"]
    assert "before the WAL append" in active[0].message


def test_rd02_faultfs_fsync_before_reply_is_clean():
    source = textwrap.dedent(
        """\
        class RawDiskRole(Process):
            def on_message(self, src, message):
                self._fs.append(self.handle, frame(message))
                self._fs.fsync(self.handle)
                super().send(src, ("ack",))
        """
    )
    assert rules_of(source, "repro/net/scratch.py") == []


def test_rd02_list_append_is_not_a_persistence_point():
    """``self.offsets.append`` must not satisfy the durability rule —
    "fs" inside an unrelated name is a list, not a disk."""
    source = textwrap.dedent(
        """\
        class Sneaky(_DurableRole):
            def on_message(self, src, message):
                self.offsets.append(message)
                super().send(src, ("ack",))
        """
    )
    assert rules_of(source, "repro/net/scratch.py") == ["RD02"]


def test_rd02_delegating_subclass_is_clean():
    """super().on_message persists on the subclass's behalf."""
    source = textwrap.dedent(
        """\
        class Chatty(_DurableRole):
            def on_message(self, src, message):
                super().on_message(src, message)
                super().send(src, ("also",))
        """
    )
    assert rules_of(source, "repro/net/scratch.py") == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------


def test_trailing_suppression_comment():
    source = "import time\nstamp = time.time()  # repro: disable=RD01\n"
    active, suppressed = analyze_source(source, "repro/mp/scratch.py")
    assert active == []
    assert [f.rule for f in suppressed] == ["RD01"]


def test_standalone_suppression_shields_next_line():
    source = (
        "import time\n"
        "# repro: disable=RD01\n"
        "stamp = time.time()\n"
    )
    active, suppressed = analyze_source(source, "repro/mp/scratch.py")
    assert active == []
    assert [f.rule for f in suppressed] == ["RD01"]


def test_suppression_is_rule_specific():
    source = "import time\nstamp = time.time()  # repro: disable=RD03\n"
    active, suppressed = analyze_source(source, "repro/mp/scratch.py")
    assert [f.rule for f in active] == ["RD01"]
    assert suppressed == []


def test_disable_all_suppresses_everything():
    source = "import time\nstamp = time.time()  # repro: disable=all\n"
    active, suppressed = analyze_source(source, "repro/mp/scratch.py")
    assert active == []
    assert [f.rule for f in suppressed] == ["RD01"]


# ----------------------------------------------------------------------
# baseline round-tripping
# ----------------------------------------------------------------------

BAD_MODULE = "import time\n\n\ndef stamp():\n    return time.time()\n"


def write_tree(root, files):
    for relpath, source in files.items():
        path = os.path.join(root, relpath)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(source)


def test_baseline_round_trip(tmp_path):
    """--baseline write -> clean run -> a new finding is still reported."""
    tree = tmp_path / "tree"
    write_tree(str(tree), {"repro/mp/old.py": BAD_MODULE})
    baseline_file = str(tmp_path / BASELINE_NAME)

    report = run_lint([str(tree)], baseline_path=baseline_file)
    assert [f.rule for f in report.findings] == ["RD01"]

    write_baseline(baseline_file, report.all_findings())
    assert len(load_baseline(baseline_file)) == 1

    report = run_lint([str(tree)], baseline_path=baseline_file)
    assert report.clean
    assert [f.rule for f in report.baselined] == ["RD01"]

    # A fresh violation in a different file is not absorbed.
    write_tree(str(tree), {"repro/mp/new.py": BAD_MODULE})
    report = run_lint([str(tree)], baseline_path=baseline_file)
    assert [f.rule for f in report.findings] == ["RD01"]
    assert report.findings[0].path == "repro/mp/new.py"
    assert [f.path for f in report.baselined] == ["repro/mp/old.py"]


def test_baseline_counts_duplicates_per_file(tmp_path):
    """Two identical findings need two baseline slots."""
    tree = tmp_path / "tree"
    double = (
        "import time\n\n\ndef a():\n    return time.time()\n\n\n"
        "def b():\n    return time.time()\n"
    )
    write_tree(str(tree), {"repro/mp/old.py": double})
    baseline_file = str(tmp_path / BASELINE_NAME)
    report = run_lint([str(tree)], baseline_path=baseline_file)
    assert len(report.findings) == 2
    write_baseline(baseline_file, report.all_findings())

    # Fixing one and adding another identical one elsewhere in the file
    # keeps the total at two, but the *new* one must not be absorbed by
    # the freed slot silently growing: counts match, so it is absorbed —
    # while a third occurrence is reported.
    triple = double + "\n\ndef c():\n    return time.time()\n"
    write_tree(str(tree), {"repro/mp/old.py": triple})
    report = run_lint([str(tree)], baseline_path=baseline_file)
    assert len(report.baselined) == 2
    assert len(report.findings) == 1


def test_committed_baseline_is_empty():
    baseline = load_baseline(os.path.join(ROOT, BASELINE_NAME))
    assert sum(baseline.values()) == 0, (
        "the committed baseline must stay empty: fix findings instead "
        "of grandfathering them (docs/ANALYSIS.md)"
    )


# ----------------------------------------------------------------------
# the self-hosting gate: the committed tree lints clean
# ----------------------------------------------------------------------


def test_tree_is_clean():
    report = run_lint(
        [SRC], baseline_path=os.path.join(ROOT, BASELINE_NAME)
    )
    assert report.checked_files > 50
    assert report.parse_errors == []
    assert report.findings == [], "\n" + report.to_text()


def test_package_relpath_normalizes_to_package_root():
    assert (
        package_relpath(os.path.join(SRC, "repro", "mp", "sim.py"))
        == "repro/mp/sim.py"
    )
    assert package_relpath("repro/net/node.py") == "repro/net/node.py"
    assert package_relpath("./scratch.py") == "scratch.py"


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=ROOT,
    )


def test_cli_full_tree_is_clean():
    result = run_cli()
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 findings" in result.stdout


def test_cli_reports_findings_as_json(tmp_path):
    write_tree(str(tmp_path), {"repro/mp/bad.py": BAD_MODULE})
    result = run_cli(str(tmp_path), "--format", "json")
    assert result.returncode == 1
    data = json.loads(result.stdout)
    assert data["summary"]["clean"] is False
    assert data["findings"][0]["rule"] == "RD01"
    assert data["findings"][0]["path"] == "repro/mp/bad.py"
    assert data["findings"][0]["hint"]


def test_cli_text_report_names_rule_and_location(tmp_path):
    write_tree(str(tmp_path), {"repro/mp/bad.py": BAD_MODULE})
    result = run_cli(str(tmp_path))
    assert result.returncode == 1
    assert "repro/mp/bad.py:5" in result.stdout
    assert "RD01" in result.stdout


def test_cli_baseline_write_then_clean(tmp_path):
    write_tree(str(tmp_path), {"repro/mp/bad.py": BAD_MODULE})
    baseline_file = str(tmp_path / BASELINE_NAME)
    result = run_cli(
        str(tmp_path), "--baseline", "--baseline-file", baseline_file
    )
    assert result.returncode == 0, result.stdout + result.stderr
    result = run_cli(str(tmp_path), "--baseline-file", baseline_file)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "1 baselined" in result.stdout

# ----------------------------------------------------------------------
# baseline hygiene: malformed / stale files fail with one clear line
# ----------------------------------------------------------------------


def test_malformed_baseline_json_raises_clear_error(tmp_path):
    from repro.analysis import BaselineError

    path = tmp_path / BASELINE_NAME
    path.write_text("{not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        load_baseline(str(path))


def test_baseline_with_wrong_version_is_rejected(tmp_path):
    from repro.analysis import BaselineError

    path = tmp_path / BASELINE_NAME
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(BaselineError, match="unsupported baseline version"):
        load_baseline(str(path))


def test_stale_baseline_naming_an_unknown_rule_is_rejected(tmp_path):
    from repro.analysis import BaselineError

    path = tmp_path / BASELINE_NAME
    entry = {"rule": "RD99", "path": "repro/x.py", "message": "gone"}
    path.write_text(json.dumps({"version": 1, "findings": [entry]}))
    with pytest.raises(BaselineError, match="unknown rule 'RD99'") as exc:
        load_baseline(str(path))
    # the error tells the user how to recover, entry by number
    assert "entry #1" in str(exc.value)
    assert "regenerate" in str(exc.value)


def test_baseline_entry_missing_fields_is_rejected(tmp_path):
    from repro.analysis import BaselineError

    path = tmp_path / BASELINE_NAME
    entry = {"rule": "RD01", "path": "repro/x.py"}  # no message
    path.write_text(json.dumps({"version": 1, "findings": [entry]}))
    with pytest.raises(BaselineError, match="missing a string 'message'"):
        load_baseline(str(path))


@pytest.mark.parametrize("count", [0, -1, True, "2"])
def test_baseline_rejects_non_positive_counts(tmp_path, count):
    from repro.analysis import BaselineError

    path = tmp_path / BASELINE_NAME
    entry = {
        "rule": "RD01",
        "path": "repro/x.py",
        "message": "m",
        "count": count,
    }
    path.write_text(json.dumps({"version": 1, "findings": [entry]}))
    with pytest.raises(BaselineError, match="non-positive count"):
        load_baseline(str(path))


def test_cli_malformed_baseline_exits_2_without_traceback(tmp_path):
    bad = tmp_path / BASELINE_NAME
    bad.write_text("{not json")
    result = run_cli(str(tmp_path), "--baseline-file", str(bad))
    assert result.returncode == 2
    assert "error:" in result.stderr
    assert "Traceback" not in result.stderr


# ----------------------------------------------------------------------
# the CLI: --rules, --explain, --deep
# ----------------------------------------------------------------------


def test_cli_rules_filter_limits_the_active_set(tmp_path):
    write_tree(str(tmp_path), {"repro/mp/bad.py": BAD_MODULE})
    result = run_cli(str(tmp_path), "--rules", "RD03")
    assert result.returncode == 0, result.stdout + result.stderr
    result = run_cli(str(tmp_path), "--rules", "RD01,RD03")
    assert result.returncode == 1
    assert "RD01" in result.stdout


def test_cli_unknown_rule_id_is_a_usage_error(tmp_path):
    result = run_cli(str(tmp_path), "--rules", "RD42")
    assert result.returncode == 2
    assert "unknown rule 'RD42'" in result.stderr
    assert "Traceback" not in result.stderr


def test_cli_explain_renders_doc_and_examples():
    result = run_cli("--explain", "RD08")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "RD08" in result.stdout
    assert "bad:" in result.stdout
    assert "good:" in result.stdout
    assert "applies to:" in result.stdout


@pytest.mark.parametrize("rule", sorted(rule_ids()))
def test_cli_explain_covers_every_rule(rule):
    result = run_cli("--explain", rule)
    assert result.returncode == 0, result.stdout + result.stderr
    assert rule in result.stdout
    assert "bad:" in result.stdout


def test_cli_explain_unknown_rule_exits_2():
    result = run_cli("--explain", "RD42")
    assert result.returncode == 2
    assert "unknown rule 'RD42'" in result.stderr


def test_cli_deep_reports_interprocedural_findings_as_json(tmp_path):
    racy = (
        "class P:\n"
        "    async def claim(self):\n"
        "        slot = self._next_slot\n"
        "        await self._flush()\n"
        "        self._next_slot = slot + 1\n"
    )
    write_tree(str(tmp_path), {"repro/net/racy.py": racy})
    result = run_cli(str(tmp_path), "--deep", "--format", "json")
    assert result.returncode == 1
    data = json.loads(result.stdout)
    assert data["summary"]["deep"] is True
    assert [f["rule"] for f in data["findings"]] == ["RD08"]

    # without --deep the interprocedural rule does not run
    result = run_cli(str(tmp_path), "--format", "json")
    data = json.loads(result.stdout)
    assert data["summary"]["deep"] is False
    assert data["findings"] == []


def test_cli_deep_self_hosts_clean():
    """The deep pass (call graph + RD08 + path-sensitive RD02) finds

    nothing in the committed tree — the self-hosting gate CI enforces."""
    result = run_cli("--deep")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 findings" in result.stdout
