"""Tests for the interface trace recorder."""

import pytest

from repro.core.actions import Invocation, Response, Switch
from repro.core.recording import TraceRecorder, WellFormednessError
from repro.core.traces import is_phase_wellformed, is_wellformed


class TestHappyPath:
    def test_invoke_respond(self):
        rec = TraceRecorder()
        rec.invoke("c", 1, "x")
        rec.respond("c", 1, "x", "out")
        t = rec.trace()
        assert len(t) == 2
        assert is_wellformed(t)

    def test_switch_through(self):
        rec = TraceRecorder()
        rec.invoke("c", 1, "x")
        rec.switch("c", 2, "x", "sv")
        rec.respond("c", 2, "x", "out")
        t = rec.trace()
        assert [type(a) for a in t] == [Invocation, Switch, Response]
        assert is_phase_wellformed(t, 1, 3)

    def test_switch_out_then_in(self):
        # A standalone phase records only its side of the switch.
        out_rec = TraceRecorder()
        out_rec.invoke("c", 1, "x")
        out_rec.switch_out("c", 2, "x", "sv")
        assert is_phase_wellformed(out_rec.trace(), 1, 2)

        in_rec = TraceRecorder()
        in_rec.switch_in("c", 2, "x", "sv")
        in_rec.respond("c", 2, "x", "out")
        assert is_phase_wellformed(in_rec.trace(), 2, 3)

    def test_interleaved_clients(self):
        rec = TraceRecorder()
        rec.invoke("a", 1, "x")
        rec.invoke("b", 1, "y")
        rec.respond("b", 1, "y", "o1")
        rec.respond("a", 1, "x", "o2")
        assert is_wellformed(rec.trace())

    def test_len(self):
        rec = TraceRecorder()
        rec.invoke("a", 1, "x")
        assert len(rec) == 1


class TestEnforcement:
    def test_double_invoke_rejected(self):
        rec = TraceRecorder()
        rec.invoke("c", 1, "x")
        with pytest.raises(WellFormednessError):
            rec.invoke("c", 1, "y")

    def test_response_without_invocation(self):
        rec = TraceRecorder()
        with pytest.raises(WellFormednessError):
            rec.respond("c", 1, "x", "out")

    def test_response_for_wrong_input(self):
        rec = TraceRecorder()
        rec.invoke("c", 1, "x")
        with pytest.raises(WellFormednessError):
            rec.respond("c", 1, "y", "out")

    def test_invoke_after_abort_rejected(self):
        rec = TraceRecorder()
        rec.invoke("c", 1, "x")
        rec.switch_out("c", 2, "x", "sv")
        with pytest.raises(WellFormednessError):
            rec.invoke("c", 1, "z")

    def test_switch_requires_open_invocation(self):
        rec = TraceRecorder()
        with pytest.raises(WellFormednessError):
            rec.switch("c", 2, "x", "sv")

    def test_switch_in_requires_closed_state(self):
        rec = TraceRecorder()
        rec.invoke("c", 1, "x")
        with pytest.raises(WellFormednessError):
            rec.switch_in("c", 2, "x", "sv")

    def test_unenforced_mode(self):
        rec = TraceRecorder(enforce=False)
        rec.respond("c", 1, "x", "out")  # no error
        assert len(rec) == 1
