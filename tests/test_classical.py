"""Tests for classical linearizability* (paper Appendix A)."""

from repro.core.actions import inv, res
from repro.core.adt import (
    consensus_adt,
    decide,
    propose,
    reg_read,
    reg_write,
    register_adt,
)
from repro.core.classical import (
    agrees_with_adt,
    check_classical_witness,
    extract_operations,
    find_permutation,
    is_linearizable_classical,
    is_reordering,
    is_sequential,
    linearize_classical,
)
from repro.core.traces import Trace

P, D = propose, decide
CONS = consensus_adt()


class TestOperationExtraction:
    def test_basic_pairing(self):
        t = Trace(
            [
                inv("a", 1, P("x")),
                inv("b", 1, P("y")),
                res("a", 1, P("x"), D("x")),
            ]
        )
        ops = extract_operations(t)
        by_client = {op.client: op for op in ops}
        assert by_client["a"].res_index == 2
        assert not by_client["a"].pending
        assert by_client["b"].pending
        assert by_client["b"].output is None

    def test_multiple_ops_per_client(self):
        t = Trace(
            [
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("x")),
                inv("a", 1, P("y")),
                res("a", 1, P("y"), D("x")),
            ]
        )
        ops = extract_operations(t)
        assert len(ops) == 2
        assert {op.inv_index for op in ops} == {0, 2}


class TestSequentialTraces:
    def test_sequential_accepts(self):
        t = Trace(
            [
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("x")),
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("x")),
            ]
        )
        assert is_sequential(t)

    def test_sequential_rejects_overlap(self):
        t = Trace(
            [
                inv("a", 1, P("x")),
                inv("b", 1, P("y")),
                res("a", 1, P("x"), D("x")),
                res("b", 1, P("y"), D("x")),
            ]
        )
        assert not is_sequential(t)

    def test_sequential_rejects_cross_client_response(self):
        t = Trace([inv("a", 1, P("x")), res("b", 1, P("x"), D("x"))])
        assert not is_sequential(t)

    def test_agrees_with_adt(self):
        good = Trace(
            [
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("x")),
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("x")),
            ]
        )
        bad = Trace(
            [
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("x")),
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("y")),
            ]
        )
        assert agrees_with_adt(good, CONS)
        assert not agrees_with_adt(bad, CONS)


class TestReordering:
    def test_is_reordering(self):
        t = Trace([inv("a", 1, P("x")), inv("b", 1, P("y"))])
        r = Trace([inv("b", 1, P("y")), inv("a", 1, P("x"))])
        assert is_reordering(r, t)

    def test_rejects_different_multiset(self):
        t = Trace([inv("a", 1, P("x"))])
        r = Trace([inv("a", 1, P("y"))])
        assert not is_reordering(r, t)

    def test_find_permutation_roundtrip(self):
        t = Trace(
            [
                inv("a", 1, P("x")),
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("y")),
                res("a", 1, P("x"), D("y")),
            ]
        )
        candidate = Trace(
            [
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("y")),
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("y")),
            ]
        )
        sigma = find_permutation(candidate, t)
        assert sigma is not None
        for i, action in enumerate(t):
            assert candidate[sigma[i]] == action


class TestWitnessCheck:
    def test_full_witness(self):
        t = Trace(
            [
                inv("a", 1, P("x")),
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("y")),
                res("a", 1, P("x"), D("y")),
            ]
        )
        witness = Trace(
            [
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("y")),
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("y")),
            ]
        )
        assert check_classical_witness(t, witness, CONS)

    def test_witness_must_preserve_realtime_order(self):
        t = Trace(
            [
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("x")),
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("x")),
            ]
        )
        # Reordering b before a contradicts their real-time order (and the
        # ADT outputs).
        witness = Trace(
            [
                inv("b", 1, P("y")),
                res("b", 1, P("y"), D("x")),
                inv("a", 1, P("x")),
                res("a", 1, P("x"), D("x")),
            ]
        )
        assert not check_classical_witness(t, witness, CONS)


class TestChecker:
    def test_paper_positive_example(self):
        t = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c2", 1, P("v2"), D("v2")),
                res("c1", 1, P("v1"), D("v2")),
            ]
        )
        result = linearize_classical(t, CONS)
        assert result.ok
        assert is_sequential(result.linearization)
        assert agrees_with_adt(result.linearization, CONS)

    def test_paper_negative_examples(self):
        t1 = Trace(
            [
                inv("c1", 1, P("v1")),
                inv("c2", 1, P("v2")),
                res("c1", 1, P("v1"), D("v1")),
                res("c2", 1, P("v2"), D("v2")),
            ]
        )
        t2 = Trace(
            [
                inv("c1", 1, P("v1")),
                res("c1", 1, P("v1"), D("v2")),
                inv("c2", 1, P("v2")),
                res("c2", 1, P("v2"), D("v2")),
            ]
        )
        assert not is_linearizable_classical(t1, CONS)
        assert not is_linearizable_classical(t2, CONS)

    def test_pending_invocations_completed(self):
        # Definition 46: a completion answers pending invocations.
        t = Trace(
            [
                inv("c1", 1, P("a")),
                inv("c2", 1, P("b")),
                res("c2", 1, P("b"), D("a")),
            ]
        )
        result = linearize_classical(t, CONS)
        assert result.ok
        # The completion includes c1's operation with some response.
        assert len(result.linearization) == 4

    def test_register_cases(self):
        adt = register_adt()
        ok = Trace(
            [
                inv("w", 1, reg_write(1)),
                inv("r", 1, reg_read()),
                res("r", 1, reg_read(), ("value", 1)),
                res("w", 1, reg_write(1), ("ok",)),
            ]
        )
        stale = Trace(
            [
                inv("w", 1, reg_write(1)),
                res("w", 1, reg_write(1), ("ok",)),
                inv("r", 1, reg_read()),
                res("r", 1, reg_read(), ("value", None)),
            ]
        )
        assert is_linearizable_classical(ok, adt)
        assert not is_linearizable_classical(stale, adt)

    def test_malformed_rejected(self):
        t = Trace([res("c", 1, P("a"), D("a"))])
        result = linearize_classical(t, CONS)
        assert not result.ok and "well-formed" in result.reason

    def test_invalid_payload_rejected(self):
        t = Trace([inv("c", 1, ("junk",))])
        assert not linearize_classical(t, CONS).ok

    def test_empty_trace(self):
        assert is_linearizable_classical(Trace(), CONS)
